open Mosaic_ir
module Fenwick = Mosaic_util.Fenwick

type t = {
  dyn_instrs : int;
  mem_accesses : int;
  mem_ratio : float;
  footprint_lines : int;
  reuse_hist : (int * int) list;
  stride_regular : float;
}

let line_size = 64

let bucket_bounds =
  (* powers of two up to 2^24 lines (1 GB of 64B lines), then cold *)
  List.init 25 (fun i -> 1 lsl i) @ [ max_int ]

(* Replay the control path popping each memory instruction's address
   stream, yielding the true dynamic access order. *)
let dynamic_addresses (func : Func.t) (tt : Trace.tile_trace) =
  let cursor = Trace.Cursor.create tt in
  let out = Mosaic_util.Int_vec.create ~initial_capacity:1024 () in
  let rec walk () =
    match Trace.Cursor.next_block cursor with
    | None -> ()
    | Some bid ->
        let blk = Func.block func bid in
        Array.iter
          (fun (i : Instr.t) ->
            if Op.is_mem i.Instr.op then
              Mosaic_util.Int_vec.push out
                (Trace.Cursor.next_addr cursor ~instr_id:i.Instr.id))
          blk.Func.instrs;
        walk ()
  in
  walk ();
  Mosaic_util.Int_vec.to_array out

(* LRU stack distances via the classic Fenwick-tree algorithm: for access i
   to a line last touched at j, the stack distance is the number of
   distinct lines touched in (j, i). *)
let reuse_histogram addrs =
  let n = Array.length addrs in
  let bit = Fenwick.create (Stdlib.max n 1) in
  let last = Hashtbl.create 4096 in
  let buckets = Array.make (List.length bucket_bounds) 0 in
  let bucket_of d =
    let rec find k = function
      | [] -> k - 1
      | bound :: rest -> if d < bound then k else find (k + 1) rest
    in
    find 0 bucket_bounds
  in
  Array.iteri
    (fun i addr ->
      let line = addr / line_size in
      (match Hashtbl.find_opt last line with
      | Some j ->
          let distance = Fenwick.range_sum bit ~lo:(j + 1) ~hi:(i - 1) in
          buckets.(bucket_of distance) <- buckets.(bucket_of distance) + 1;
          Fenwick.add bit j (-1)
      | None ->
          (* cold miss: infinite distance *)
          let cold = Array.length buckets - 1 in
          buckets.(cold) <- buckets.(cold) + 1);
      Hashtbl.replace last line i;
      Fenwick.add bit i 1)
    addrs;
  (List.map2 (fun bound count -> (bound, count)) bucket_bounds
     (Array.to_list buckets),
   Hashtbl.length last)

(* Per static instruction: does the stride repeat? *)
let stride_regularity (tt : Trace.tile_trace) =
  let regular = ref 0 and total = ref 0 in
  Array.iter
    (fun addrs ->
      let n = Array.length addrs in
      for i = 2 to n - 1 do
        incr total;
        if addrs.(i) - addrs.(i - 1) = addrs.(i - 1) - addrs.(i - 2) then
          incr regular
      done)
    tt.Trace.mem_addrs;
  if !total = 0 then 0.0 else float_of_int !regular /. float_of_int !total

let tile func (tt : Trace.tile_trace) =
  let addrs = dynamic_addresses func tt in
  let reuse_hist, footprint_lines = reuse_histogram addrs in
  let mem_accesses = Array.length addrs in
  {
    dyn_instrs = tt.Trace.dyn_instrs;
    mem_accesses;
    mem_ratio =
      (if tt.Trace.dyn_instrs = 0 then 0.0
       else float_of_int mem_accesses /. float_of_int tt.Trace.dyn_instrs);
    footprint_lines;
    reuse_hist;
    stride_regular = stride_regularity tt;
  }

let whole prog (trace : Trace.t) =
  let parts =
    Array.to_list
      (Array.map
         (fun (tt : Trace.tile_trace) ->
           tile (Program.func_exn prog tt.Trace.kernel) tt)
         trace.Trace.tiles)
  in
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 parts in
  let dyn_instrs = sum (fun p -> p.dyn_instrs) in
  let mem_accesses = sum (fun p -> p.mem_accesses) in
  let reuse_hist =
    List.map
      (fun bound ->
        ( bound,
          List.fold_left
            (fun acc p -> acc + List.assoc bound p.reuse_hist)
            0 parts ))
      bucket_bounds
  in
  let weighted_stride =
    let total = float_of_int (Stdlib.max mem_accesses 1) in
    List.fold_left
      (fun acc p ->
        acc +. (p.stride_regular *. float_of_int p.mem_accesses /. total))
      0.0 parts
  in
  {
    dyn_instrs;
    mem_accesses;
    mem_ratio =
      (if dyn_instrs = 0 then 0.0
       else float_of_int mem_accesses /. float_of_int dyn_instrs);
    footprint_lines = sum (fun p -> p.footprint_lines);
    reuse_hist;
    stride_regular = weighted_stride;
  }

let capacity_hit_rate t ~lines =
  if t.mem_accesses = 0 then 0.0
  else
    let hits =
      List.fold_left
        (fun acc (bound, count) -> if bound <= lines then acc + count else acc)
        0 t.reuse_hist
    in
    float_of_int hits /. float_of_int t.mem_accesses

let pp ppf t =
  Format.fprintf ppf
    "@[<v>dyn instrs: %d@ mem accesses: %d (ratio %.3f)@ footprint: %d lines \
     (%d KB)@ stride regularity: %.1f%%@ reuse hist (lines <= bound: \
     accesses):@ "
    t.dyn_instrs t.mem_accesses t.mem_ratio t.footprint_lines
    (t.footprint_lines * line_size / 1024)
    (100.0 *. t.stride_regular);
  List.iter
    (fun (bound, count) ->
      if count > 0 then
        if bound = max_int then Format.fprintf ppf "  cold: %d@ " count
        else Format.fprintf ppf "  <=%d: %d@ " bound count)
    t.reuse_hist;
  Format.fprintf ppf "@]"
