lib/trace/trace.mli: Mosaic_ir
