lib/trace/analysis.mli: Format Mosaic_ir Trace
