lib/trace/analysis.ml: Array Format Func Hashtbl Instr List Mosaic_ir Mosaic_util Op Program Stdlib Trace
