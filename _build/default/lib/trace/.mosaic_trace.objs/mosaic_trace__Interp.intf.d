lib/trace/interp.mli: Mosaic_ir Trace
