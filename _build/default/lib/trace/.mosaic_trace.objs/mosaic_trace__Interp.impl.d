lib/trace/interp.ml: Array Eval Func Hashtbl Instr Int64 List Mosaic_ir Mosaic_util Op Printf Program Queue Stdlib Trace Value
