lib/trace/trace.ml: Array Fun Marshal Mosaic_ir Printf
