lib/trace/encode.ml: Array Buffer Bytes Char Printf Stdlib Trace
