lib/trace/encode.mli: Bytes Trace
