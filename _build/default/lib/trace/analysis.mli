(** Trace-based workload characterization.

    Beyond the IPC characterization of Fig 6, the traces support the
    deeper locality analyses an early-stage designer wants when sizing
    caches and choosing accelerators: LRU reuse distances (what capacity
    would each level need), footprints, and stride profiles (would a
    stream prefetcher help). Used by the CLI's [characterize] command and
    the bench harness. *)

type t = {
  dyn_instrs : int;
  mem_accesses : int;
  mem_ratio : float;  (** memory accesses / dynamic instructions *)
  footprint_lines : int;  (** distinct 64B lines touched *)
  reuse_hist : (int * int) list;
      (** (log2 bucket upper bound in lines, accesses) — LRU stack
          distances; the final bucket with bound [max_int] is cold misses *)
  stride_regular : float;
      (** fraction of accesses whose per-instruction stride repeats the
          previous one (prefetcher-friendliness) *)
}

(** Analyze one tile's access stream in true dynamic order (reconstructed
    by replaying the control path of its kernel). *)
val tile : Mosaic_ir.Func.t -> Trace.tile_trace -> t

(** Aggregate over all tiles of a trace. *)
val whole : Mosaic_ir.Program.t -> Trace.t -> t

(** [capacity_hit_rate t ~lines] estimates the hit rate of a fully
    associative LRU cache with [lines] lines from the reuse histogram
    (upper bound on set-associative behaviour). *)
val capacity_hit_rate : t -> lines:int -> float

val pp : Format.formatter -> t -> unit
