module Table = Mosaic_util.Table
module Core_tile = Mosaic_tile.Core_tile
module Tile_config = Mosaic_tile.Tile_config
module Branch = Mosaic_tile.Branch
module Hierarchy = Mosaic_memory.Hierarchy
module Dram = Mosaic_memory.Dram
module Op = Mosaic_ir.Op

let kv = [ Table.column ~align:Table.Left "metric"; Table.column "value" ]

let summary (r : Soc.result) =
  Table.render ~columns:kv
    [
      [ "cycles"; Table.icell r.Soc.cycles ];
      [ "instructions"; Table.icell r.Soc.instrs ];
      [ "IPC"; Table.fcell ~decimals:3 r.Soc.ipc ];
      [ "simulated time (ms)"; Table.fcell ~decimals:3 (r.Soc.seconds *. 1e3) ];
      [ "energy (J)"; Printf.sprintf "%.3e" r.Soc.energy_j ];
      [ "EDP (J*s)"; Printf.sprintf "%.3e" r.Soc.edp ];
      [ "simulation speed (MIPS)"; Table.fcell r.Soc.mips ];
      [ "accelerator invocations"; Table.icell r.Soc.accel_invocations ];
    ]

let per_tile (r : Soc.result) =
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (s : Core_tile.stats) ->
           let b = s.Core_tile.branch in
           [
             Table.icell i;
             Table.icell s.Core_tile.completed_instrs;
             Table.icell s.Core_tile.finish_cycle;
             Table.fcell
               (if s.Core_tile.finish_cycle > 0 then
                  float_of_int s.Core_tile.completed_instrs
                  /. float_of_int s.Core_tile.finish_cycle
                else 0.0);
             Table.icell s.Core_tile.dbbs_launched;
             Table.icell s.Core_tile.mem_accesses;
             (if b.Branch.predictions = 0 then "-"
              else
                Printf.sprintf "%.1f%%"
                  (100.0
                  *. (1.0
                     -. float_of_int b.Branch.mispredictions
                        /. float_of_int b.Branch.predictions)));
             Printf.sprintf "%.2e" (s.Core_tile.energy_pj *. 1e-12);
           ])
         r.Soc.tile_stats)
  in
  Table.render
    ~columns:
      [
        Table.column "tile";
        Table.column "instrs";
        Table.column "finish cyc";
        Table.column "IPC";
        Table.column "DBBs";
        Table.column "mem ops";
        Table.column "branch acc";
        Table.column "energy J";
      ]
    rows

let instruction_mix (r : Soc.result) =
  let totals = Array.make Tile_config.nclasses 0 in
  Array.iter
    (fun (s : Core_tile.stats) ->
      Array.iteri
        (fun i n -> totals.(i) <- totals.(i) + n)
        s.Core_tile.issued_by_class)
    r.Soc.tile_stats;
  let all = Array.fold_left ( + ) 0 totals in
  let rows =
    List.filter_map
      (fun cls ->
        let n = totals.(Tile_config.class_index cls) in
        if n = 0 then None
        else
          Some
            [
              Op.class_to_string cls;
              Table.icell n;
              Printf.sprintf "%.1f%%"
                (100.0 *. float_of_int n /. float_of_int (Stdlib.max all 1));
            ])
      Op.all_classes
  in
  Table.render
    ~columns:
      [
        Table.column ~align:Table.Left "class";
        Table.column "issued";
        Table.column "share";
      ]
    rows

let memory (r : Soc.result) =
  let t = r.Soc.mem_totals in
  let d = r.Soc.dram in
  Table.render ~columns:kv
    [
      [ "L1 accesses"; Table.icell t.Hierarchy.l1_accesses ];
      [ "L2 accesses"; Table.icell t.Hierarchy.l2_accesses ];
      [ "LLC accesses"; Table.icell t.Hierarchy.llc_accesses ];
      [ "DRAM line reads"; Table.icell d.Dram.reads ];
      [ "DRAM line writes"; Table.icell d.Dram.writes ];
      [ "DRAM busy returns"; Table.icell d.Dram.busy_returns ];
      [ "DRAM row hits"; Table.icell d.Dram.row_hits ];
      [ "MAO issue rejections"; Table.icell r.Soc.mao_stalls ];
      [ "interleaver sends"; Table.icell r.Soc.interleaver.Interleaver.sends ];
      [ "interleaver stalls"; Table.icell r.Soc.interleaver.Interleaver.send_stalls ];
    ]

let full r =
  String.concat "\n"
    [
      "== summary ==";
      summary r;
      "== per tile ==";
      per_tile r;
      "== instruction mix ==";
      instruction_mix r;
      "== memory system ==";
      memory r;
    ]
