(** Human-readable reports over simulation results: the per-tile, per-class
    and memory-system breakdowns behind the headline numbers (the
    McPAT-flavoured reporting the CLI's [run] command prints). *)

(** Headline metrics table. *)
val summary : Soc.result -> string

(** Per-tile cycles/instructions/IPC/energy and branch accuracy. *)
val per_tile : Soc.result -> string

(** Instruction mix by functional-unit class, aggregated over tiles. *)
val instruction_mix : Soc.result -> string

(** Memory-system counters (per-level totals and DRAM behaviour). *)
val memory : Soc.result -> string

(** All of the above concatenated. *)
val full : Soc.result -> string
