(** Named system configurations from the paper's evaluation.

    Table I: the Intel Xeon E5-2667 v3 machine used to validate accuracy and
    scaling (§VI-A). Table II: the parameters of the DAE case study
    (§VII-A). *)

(** Table I hierarchy: 32 KB private L1, 2 MB private L2, 20 MB shared LLC,
    DDR4 @ 68 GB/s. *)
val xeon_hierarchy : Mosaic_memory.Hierarchy.config

(** Xeon core frequency (GHz). *)
val xeon_freq_ghz : float

(** Table I hierarchy scaled down ~16x (capacities and bandwidth) to match
    the scaled datasets of the Fig 7-9 scaling experiments; keeps each
    working set spilling from the same level it would on the real machine
    with full Parboil inputs. *)
val xeon_scaled_hierarchy : Mosaic_memory.Hierarchy.config

(** Table II hierarchy: 32 KB L1, shared 2 MB L2, DDR3L 24 GB/s with
    200-cycle latency. *)
val dae_hierarchy : Mosaic_memory.Hierarchy.config

(** Soc configs wired with the above. *)
val xeon_soc : Soc.config

val dae_soc : Soc.config

(** Table II cores. *)
val dae_out_of_order : Mosaic_tile.Tile_config.t

val dae_in_order : Mosaic_tile.Tile_config.t

(** Rows of Table I / Table II for the benchmark harness to print. *)
val table1_rows : (string * string) list

val table2_rows : (string * string) list
