module Hierarchy = Mosaic_memory.Hierarchy
module Cache = Mosaic_memory.Cache
module Dram = Mosaic_memory.Dram
module Tile_config = Mosaic_tile.Tile_config

let cache ~size_kb ~assoc ~latency ~mshr ?prefetch () =
  {
    Cache.size_bytes = size_kb * 1024;
    line_size = 64;
    assoc;
    latency;
    mshr_size = mshr;
    prefetch;
  }

(* Table I: Xeon E5-2667 v3. 68 GB/s at 3.2 GHz is ~21 B/cycle: about 21
   64B lines per 64-cycle epoch. *)
let xeon_freq_ghz = 3.2

let xeon_hierarchy =
  {
    Hierarchy.l1 =
      cache ~size_kb:32 ~assoc:8 ~latency:4 ~mshr:16
        ~prefetch:Mosaic_memory.Prefetcher.default_config ();
    l2 = Some (cache ~size_kb:2048 ~assoc:8 ~latency:12 ~mshr:32 ());
    llc = Some (cache ~size_kb:20480 ~assoc:20 ~latency:30 ~mshr:64 ());
    dram =
      Hierarchy.Simple
        { Dram.min_latency = 220; lines_per_epoch = 21; epoch_cycles = 64 };
    coherence = None;
  }

(* The scaling experiments (Figs 7-9) run datasets scaled down ~16x from
   Parboil's to keep traces tractable, so the memory system is scaled with
   them: cache capacities and DRAM bandwidth shrink by the same factor,
   preserving which level each working set spills out of. *)
let xeon_scaled_hierarchy =
  {
    Hierarchy.l1 =
      cache ~size_kb:8 ~assoc:8 ~latency:4 ~mshr:16
        ~prefetch:Mosaic_memory.Prefetcher.default_config ();
    l2 = Some (cache ~size_kb:128 ~assoc:8 ~latency:12 ~mshr:32 ());
    llc = Some (cache ~size_kb:1024 ~assoc:16 ~latency:30 ~mshr:64 ());
    dram =
      Hierarchy.Simple
        { Dram.min_latency = 220; lines_per_epoch = 3; epoch_cycles = 64 };
    coherence = None;
  }

(* Table II: DDR3L, 24 GB/s at 2 GHz = 12 B/cycle: 12 lines per 64-cycle
   epoch; 200-cycle latency; L1 1 cycle, shared L2 6 cycles. *)
let dae_hierarchy =
  {
    Hierarchy.l1 = cache ~size_kb:32 ~assoc:8 ~latency:1 ~mshr:16 ();
    l2 = None;
    llc = Some (cache ~size_kb:2048 ~assoc:8 ~latency:6 ~mshr:32 ());
    dram =
      Hierarchy.Simple
        { Dram.min_latency = 200; lines_per_epoch = 12; epoch_cycles = 64 };
    coherence = None;
  }

let xeon_soc =
  {
    Soc.default_config with
    Soc.hierarchy = xeon_hierarchy;
    freq_ghz = xeon_freq_ghz;
  }

let dae_soc =
  { Soc.default_config with Soc.hierarchy = dae_hierarchy; freq_ghz = 2.0 }

let dae_out_of_order = Tile_config.out_of_order

let dae_in_order = Tile_config.in_order

let table1_rows =
  [
    ("Sockets, Cores", "2 sockets, 8 cores each");
    ("Node Technology and Frequency", "22nm, 3200 MHz");
    ("L1-I and L1-D", "32KB private / 8-way");
    ("L2", "2MB private / 8-way");
    ("LLC", "20MB shared / 20-way");
    ("DRAM", "128GB DDR4 @ 68GB/s");
  ]

let table2_rows =
  [
    ("Issue Width (OoO / InO)", "4 / 1");
    ("Instruction Window/RoB/LSQ (OoO / InO)", "128/128/128 / 1");
    ("Frequency/Tech", "2GHz / 22nm");
    ("Area mm2 (OoO / InO)", "8.44 / 1.01");
    ("L1", "32KB / 8-way / 1-cycle latency");
    ("L2", "2MB / 8-way / 6-cycle latency");
    ("DRAM", "DDR3L / 24GB/s BW / 200-cycle latency");
    ("Comm. Buffer Sizes", "512 entries / 1-cycle latency");
  ]
