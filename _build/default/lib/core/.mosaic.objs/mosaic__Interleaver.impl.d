lib/core/interleaver.ml: Hashtbl Mosaic_util Noc Option Stdlib
