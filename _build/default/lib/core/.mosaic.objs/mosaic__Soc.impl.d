lib/core/soc.ml: Array Float Hashtbl Interleaver List Mosaic_accel Mosaic_compiler Mosaic_ir Mosaic_memory Mosaic_tile Mosaic_trace Noc Option Printf Program Stdlib String Sys
