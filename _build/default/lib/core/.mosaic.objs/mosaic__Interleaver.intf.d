lib/core/interleaver.mli: Noc
