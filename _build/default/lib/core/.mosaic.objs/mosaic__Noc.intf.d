lib/core/noc.mli:
