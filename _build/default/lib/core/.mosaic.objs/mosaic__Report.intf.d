lib/core/report.mli: Soc
