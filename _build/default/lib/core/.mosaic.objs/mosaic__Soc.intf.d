lib/core/soc.mli: Interleaver Mosaic_accel Mosaic_ir Mosaic_memory Mosaic_tile Mosaic_trace Noc
