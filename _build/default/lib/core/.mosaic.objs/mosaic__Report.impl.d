lib/core/report.ml: Array Interleaver List Mosaic_ir Mosaic_memory Mosaic_tile Mosaic_util Printf Soc Stdlib String
