lib/core/noc.ml: Float Hashtbl List Option Printf Stdlib
