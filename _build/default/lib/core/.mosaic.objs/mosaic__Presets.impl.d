lib/core/presets.ml: Mosaic_memory Mosaic_tile Soc
