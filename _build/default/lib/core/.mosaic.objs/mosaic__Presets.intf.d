lib/core/presets.mli: Mosaic_memory Mosaic_tile Soc
