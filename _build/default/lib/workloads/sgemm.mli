(** Parboil SGEMM: dense single-precision matrix multiply, C = A * B.
    Compute-bound; exposes abundant data-level parallelism (Fig 6, Fig 8,
    Fig 12). SPMD over rows of C.

    [accel:true] builds the variant where tile 0 off-loads the whole
    multiply to the ["gemm"] accelerator (§VII-B). *)

val instance :
  ?seed:int -> ?accel:bool -> m:int -> n:int -> k:int -> unit -> Runner.t

(** DAE-sliced variant (kernels [sgemm_access]/[sgemm_execute]); Fig 12
    runs SGEMM on DAE pairs as one of the candidate systems. *)
val dae_instance :
  ?seed:int ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  Runner.t * Mosaic_compiler.Dae.info
