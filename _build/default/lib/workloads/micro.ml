open Mosaic_ir
module B = Builder
module U = Kernel_util
module Rng = Mosaic_util.Rng

(* A random cyclic permutation so the chain visits every node once before
   repeating (Sattolo's algorithm). *)
let cyclic_permutation ~seed n =
  let rng = Rng.create seed in
  let next = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Rng.int rng i in
    let tmp = next.(i) in
    next.(i) <- next.(j);
    next.(j) <- tmp
  done;
  next

let pointer_chase ?(seed = 53) ~nodes ~steps () =
  let next = cyclic_permutation ~seed nodes in
  let prog = Program.create () in
  let g_next = Program.alloc prog "next" ~elems:nodes ~elem_size:8 in
  let g_out = Program.alloc prog "out" ~elems:1 ~elem_size:8 in
  let _ =
    B.define prog "pointer_chase" ~nparams:1 (fun b ->
        let cur = B.var b (B.imm 0) in
        B.for_ b ~from:(B.imm 0) ~to_:(B.param b 0) (fun _ ->
            B.assign b ~var:cur (B.load b (B.elem b g_next cur)));
        B.store b ~addr:(B.elem b g_out (B.imm 0)) cur;
        B.ret b ())
  in
  let expected =
    let cur = ref 0 in
    for _ = 1 to steps do
      cur := next.(!cur)
    done;
    !cur
  in
  {
    Runner.name = "pointer_chase";
    program = prog;
    kernel = "pointer_chase";
    args = [ Value.of_int steps ];
    setup = (fun it -> U.write_ints it g_next next);
    check =
      (fun it ->
        Value.to_int (Mosaic_trace.Interp.peek_global it g_out 0) = expected);
  }

let stream ?(seed = 59) ~elems () =
  let data = Datasets.random_floats ~seed elems in
  let prog = Program.create () in
  let g = Program.alloc prog "data" ~elems ~elem_size:8 in
  let g_out = Program.alloc prog "out" ~elems:1 ~elem_size:8 in
  let expected = Array.fold_left ( +. ) 0.0 data in
  let _ =
    B.define prog "stream" ~nparams:1 (fun b ->
        let acc = B.var b (B.fimm 0.0) in
        B.for_ b ~from:(B.imm 0) ~to_:(B.param b 0) (fun i ->
            B.assign b ~var:acc (B.fadd b acc (B.load b (B.elem b g i))));
        B.store b ~addr:(B.elem b g_out (B.imm 0)) acc;
        B.ret b ())
  in
  {
    Runner.name = "stream";
    program = prog;
    kernel = "stream";
    args = [ Value.of_int elems ];
    setup = (fun it -> U.write_floats it g data);
    check =
      (fun it ->
        U.approx_equal
          (Value.to_float (Mosaic_trace.Interp.peek_global it g_out 0))
          expected);
  }

let random_access ?(seed = 61) ~elems ~accesses () =
  let idx = Datasets.random_ints ~seed ~bound:elems accesses in
  let data = Datasets.random_ints ~seed:(seed + 1) ~bound:1000 elems in
  let prog = Program.create () in
  let g_idx = Program.alloc prog "idx" ~elems:accesses ~elem_size:8 in
  let g = Program.alloc prog "data" ~elems ~elem_size:8 in
  let g_out = Program.alloc prog "out" ~elems:1 ~elem_size:8 in
  let expected = Array.fold_left (fun acc i -> acc + data.(i)) 0 idx in
  let _ =
    B.define prog "random_access" ~nparams:1 (fun b ->
        let acc = B.var b (B.imm 0) in
        B.for_ b ~from:(B.imm 0) ~to_:(B.param b 0) (fun i ->
            let target = B.load b (B.elem b g_idx i) in
            B.assign b ~var:acc (B.add b acc (B.load b (B.elem b g target))));
        B.store b ~addr:(B.elem b g_out (B.imm 0)) acc;
        B.ret b ())
  in
  {
    Runner.name = "random_access";
    program = prog;
    kernel = "random_access";
    args = [ Value.of_int accesses ];
    setup =
      (fun it ->
        U.write_ints it g_idx idx;
        U.write_ints it g data);
    check =
      (fun it ->
        Value.to_int (Mosaic_trace.Interp.peek_global it g_out 0) = expected);
  }
