(** Parboil LBM: one collide-stream step of a lattice-Boltzmann method,
    reduced to a D2Q5 lattice (center + 4 neighbors). Heavily streaming:
    5 distribution loads and 5 stores per cell with FP relaxation
    arithmetic. SPMD over interior rows. *)

val instance : ?seed:int -> h:int -> w:int -> unit -> Runner.t
