(** Bipartite graph projection — the DAE case-study kernel (§VII-A,
    Fig 11). For every left-side node, every pair of its right-side
    neighbors (a, b) accumulates w(a) * w(b) into the dense projection
    matrix: each pair of edges updates a projection entry through an
    irregular, memory-latency-bound read-modify-write. SPMD over left
    nodes; accumulation uses atomic FP adds so tiles can share rows.

    Sized so the projection matrix spills past the LLC, which is what makes
    the kernel latency-bound. *)

val instance :
  ?seed:int -> n_left:int -> n_right:int -> degree:int -> unit -> Runner.t

(** The same kernel sliced into access/execute DAE halves; returns the
    instance (with both slices registered in its program) and the slicing
    report. Tiles [0..pairs-1] run the access slice, [pairs..2*pairs-1]
    the execute slice. *)
val dae_instance :
  ?seed:int ->
  n_left:int ->
  n_right:int ->
  degree:int ->
  unit ->
  Runner.t * Mosaic_compiler.Dae.info
