open Mosaic_ir
module B = Builder
module U = Kernel_util

let instance ?(seed = 5) ~n ~bins () =
  let prog = Program.create () in
  let g_img = Program.alloc prog "img" ~elems:n ~elem_size:4 in
  let g_hist = Program.alloc prog "hist" ~elems:bins ~elem_size:4 in
  let _ =
    B.define prog "histo" ~nparams:2 (fun b ->
        let pn = B.param b 0 in
        let pbins = B.param b 1 in
        let lo, hi = U.spmd_slice b ~total:pn in
        B.for_ b ~from:lo ~to_:hi (fun i ->
            let v = B.load b ~size:4 (B.elem b g_img i) in
            (* Clamp into range like Parboil's bin computation. *)
            let bin = U.min_op b v (B.sub b pbins (B.imm 1)) in
            ignore
              (B.atomic b Op.Rmw_add ~size:4 ~addr:(B.elem b g_hist bin)
                 (B.imm 1)));
        B.ret b ())
  in
  let img = Datasets.random_ints ~seed ~bound:(bins + (bins / 4)) n in
  let expected = Array.make bins 0 in
  Array.iter
    (fun v ->
      let bin = Stdlib.min v (bins - 1) in
      expected.(bin) <- expected.(bin) + 1)
    img;
  {
    Runner.name = "histo";
    program = prog;
    kernel = "histo";
    args = [ Value.of_int n; Value.of_int bins ];
    setup = (fun it -> U.write_ints it g_img img);
    check =
      (fun it ->
        let got = U.read_ints it g_hist bins in
        got = expected);
  }
