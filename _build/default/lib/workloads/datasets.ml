module Rng = Mosaic_util.Rng

type csr = { n : int; row_ptr : int array; cols : int array }

let random_graph ~seed ~n ~degree =
  if n <= 1 || degree <= 0 then invalid_arg "Datasets.random_graph";
  let rng = Rng.create seed in
  let row_ptr = Array.make (n + 1) 0 in
  let cols = Array.make (n * degree) 0 in
  for u = 0 to n - 1 do
    row_ptr.(u) <- u * degree;
    for k = 0 to degree - 1 do
      let rec pick () =
        let v = Rng.int rng n in
        if v = u then pick () else v
      in
      cols.((u * degree) + k) <- pick ()
    done
  done;
  row_ptr.(n) <- n * degree;
  { n; row_ptr; cols }

let random_bipartite ~seed ~n_left ~n_right ~degree =
  if n_left <= 0 || n_right <= 0 || degree <= 0 then
    invalid_arg "Datasets.random_bipartite";
  let rng = Rng.create seed in
  let row_ptr = Array.make (n_left + 1) 0 in
  let cols = Array.make (n_left * degree) 0 in
  for u = 0 to n_left - 1 do
    row_ptr.(u) <- u * degree;
    for k = 0 to degree - 1 do
      cols.((u * degree) + k) <- Rng.int rng n_right
    done
  done;
  row_ptr.(n_left) <- n_left * degree;
  { n = n_left; row_ptr; cols }

type sparse = { shape : csr; values : float array }

let random_sparse ~seed ~rows ~cols:ncols ~per_row =
  let shape =
    random_bipartite ~seed ~n_left:rows ~n_right:ncols ~degree:per_row
  in
  let rng = Rng.create (seed + 1) in
  let values =
    Array.init (Array.length shape.cols) (fun _ -> Rng.unit_float rng)
  in
  { shape; values }

let random_floats ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.unit_float rng)

let random_ints ~seed ~bound n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.int rng bound)

let random_points ~seed n = random_floats ~seed (3 * n)

let bfs_distances g ~source =
  let dist = Array.make g.n max_int in
  dist.(source) <- 0;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    for k = g.row_ptr.(u) to g.row_ptr.(u + 1) - 1 do
      let v = g.cols.(k) in
      if dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v q
      end
    done
  done;
  dist
