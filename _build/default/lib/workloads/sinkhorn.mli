(** The Sinkhorn-style alternating kernel of §VII-B as one real kernel:
    [reps] rounds of a dense SGEMM phase followed by a sparse EWSD phase,
    with spin barriers between phases (all tiles participate in both).
    With [accel:true] the dense phase is off-loaded by tile 0 to the
    ["gemm"] accelerator while the other tiles wait at the barrier. *)

val instance :
  ?seed:int ->
  ?accel:bool ->
  dim:int ->
  rows:int ->
  cols:int ->
  per_row:int ->
  reps:int ->
  unit ->
  Runner.t
