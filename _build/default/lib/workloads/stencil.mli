(** Parboil STENCIL: one Jacobi sweep of a 2D 5-point stencil over an
    [h x w] grid. Streaming with spatial reuse. SPMD over interior rows. *)

val instance : ?seed:int -> h:int -> w:int -> unit -> Runner.t
