open Mosaic_ir
module B = Builder
module U = Kernel_util

let instance ?(seed = 19) ~grid_points ~atoms ~cutoff () =
  let prog = Program.create () in
  let g_gx = Program.alloc prog "grid_xyz" ~elems:(3 * grid_points) ~elem_size:4 in
  let g_ax = Program.alloc prog "atom_xyz" ~elems:(3 * atoms) ~elem_size:4 in
  let g_q = Program.alloc prog "charge" ~elems:atoms ~elem_size:4 in
  let g_pot = Program.alloc prog "potential" ~elems:grid_points ~elem_size:4 in
  let cutoff2 = cutoff *. cutoff in
  let _ =
    B.define prog "cutcp" ~nparams:2 (fun b ->
        let npts = B.param b 0 and natoms = B.param b 1 in
        let lo, hi = U.spmd_slice b ~total:npts in
        B.for_ b ~from:lo ~to_:hi (fun gpt ->
            let gbase = B.mul b gpt (B.imm 3) in
            let gx = B.load b ~size:4 (B.elem b g_gx gbase) in
            let gy = B.load b ~size:4 (B.elem b g_gx (B.add b gbase (B.imm 1))) in
            let gz = B.load b ~size:4 (B.elem b g_gx (B.add b gbase (B.imm 2))) in
            let pot = B.var b (B.fimm 0.0) in
            B.for_ b ~from:(B.imm 0) ~to_:natoms (fun a ->
                let abase = B.mul b a (B.imm 3) in
                let ax = B.load b ~size:4 (B.elem b g_ax abase) in
                let ay =
                  B.load b ~size:4 (B.elem b g_ax (B.add b abase (B.imm 1)))
                in
                let az =
                  B.load b ~size:4 (B.elem b g_ax (B.add b abase (B.imm 2)))
                in
                let dx = B.fsub b gx ax in
                let dy = B.fsub b gy ay in
                let dz = B.fsub b gz az in
                let r2 =
                  B.fadd b
                    (B.fadd b (B.fmul b dx dx) (B.fmul b dy dy))
                    (B.fmul b dz dz)
                in
                B.if_ b
                  (B.fcmp b Op.Lt r2 (B.fimm cutoff2))
                  (fun () ->
                    let q = B.load b ~size:4 (B.elem b g_q a) in
                    let contrib = B.fdiv b q (B.math1 b Op.Sqrt r2) in
                    B.assign b ~var:pot (B.fadd b pot contrib)));
            B.store b ~size:4 ~addr:(B.elem b g_pot gpt) pot);
        B.ret b ())
  in
  let gxyz = Datasets.random_points ~seed grid_points in
  let axyz = Datasets.random_points ~seed:(seed + 1) atoms in
  let q = Datasets.random_floats ~seed:(seed + 2) atoms in
  let expected =
    Array.init grid_points (fun gpt ->
        let acc = ref 0.0 in
        for a = 0 to atoms - 1 do
          let dx = gxyz.(3 * gpt) -. axyz.(3 * a) in
          let dy = gxyz.((3 * gpt) + 1) -. axyz.((3 * a) + 1) in
          let dz = gxyz.((3 * gpt) + 2) -. axyz.((3 * a) + 2) in
          let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
          if r2 < cutoff2 then acc := !acc +. (q.(a) /. sqrt r2)
        done;
        !acc)
  in
  {
    Runner.name = "cutcp";
    program = prog;
    kernel = "cutcp";
    args = [ Value.of_int grid_points; Value.of_int atoms ];
    setup =
      (fun it ->
        U.write_floats it g_gx gxyz;
        U.write_floats it g_ax axyz;
        U.write_floats it g_q q);
    check =
      (fun it ->
        let got = U.read_floats it g_pot grid_points in
        Array.for_all2 U.approx_equal got expected);
  }
