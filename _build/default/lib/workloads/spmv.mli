(** Parboil SPMV: sparse matrix-vector product, y = A x (CSR).
    Bandwidth-bound with irregular gathers of x — the sublinear-scaling
    example of Fig 9. SPMD over rows. *)

val instance :
  ?seed:int -> rows:int -> cols:int -> per_row:int -> unit -> Runner.t
