(** Named benchmark registry with the reference dataset sizes used by the
    accuracy/characterization experiments (Figs 5-6). Sizes are scaled to
    keep traces tractable while preserving each kernel's bottleneck
    character (see DESIGN.md). *)

(** All eleven Parboil benchmark names, in the paper's Fig 5 order. *)
val parboil_names : string list

(** Build the reference instance of a benchmark. Raises [Invalid_argument]
    for unknown names. *)
val instance : string -> Runner.t

(** All benchmarks including the case-study kernels
    ("projection", "ewsd"). *)
val all_names : string list
