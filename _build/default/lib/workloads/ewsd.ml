open Mosaic_ir
module B = Builder
module U = Kernel_util

let build ?(seed = 41) ~rows ~cols ~per_row () =
  let sp = Datasets.random_sparse ~seed ~rows ~cols ~per_row in
  let nnz = Array.length sp.Datasets.shape.Datasets.cols in
  let dense = Datasets.random_floats ~seed:(seed + 2) (rows * cols) in
  let prog = Program.create () in
  let g_rp = Program.alloc prog "row_ptr" ~elems:(rows + 1) ~elem_size:4 in
  let g_cols = Program.alloc prog "cols" ~elems:nnz ~elem_size:4 in
  let g_vals = Program.alloc prog "vals" ~elems:nnz ~elem_size:4 in
  let g_dense = Program.alloc prog "dense" ~elems:(rows * cols) ~elem_size:4 in
  let g_out = Program.alloc prog "out" ~elems:nnz ~elem_size:4 in
  let func =
    B.define prog "ewsd" ~nparams:2 (fun b ->
        let nrows = B.param b 0 and ncols = B.param b 1 in
        let lo, hi = U.spmd_slice b ~total:nrows in
        B.for_ b ~from:lo ~to_:hi (fun i ->
            let s = B.load b ~size:4 (B.elem b g_rp i) in
            let e = B.load b ~size:4 (B.elem b g_rp (B.add b i (B.imm 1))) in
            let drow = B.mul b i ncols in
            B.for_ b ~from:s ~to_:e (fun kk ->
                let j = B.load b ~size:4 (B.elem b g_cols kk) in
                let v = B.load b ~size:4 (B.elem b g_vals kk) in
                let d = B.load b ~size:4 (B.elem b g_dense (B.add b drow j)) in
                B.store b ~size:4 ~addr:(B.elem b g_out kk) (B.fmul b v d)));
        B.ret b ())
  in
  let expected =
    Array.init nnz (fun k ->
        let row =
          (* Row of entry k: row_ptr is uniform (degree per_row). *)
          k / per_row
        in
        sp.Datasets.values.(k)
        *. dense.((row * cols) + sp.Datasets.shape.Datasets.cols.(k)))
  in
  let instance =
    {
      Runner.name = "ewsd";
      program = prog;
      kernel = "ewsd";
      args = [ Value.of_int rows; Value.of_int cols ];
      setup =
        (fun it ->
          U.write_ints it g_rp sp.Datasets.shape.Datasets.row_ptr;
          U.write_ints it g_cols sp.Datasets.shape.Datasets.cols;
          U.write_floats it g_vals sp.Datasets.values;
          U.write_floats it g_dense dense);
      check =
        (fun it ->
          let got = U.read_floats it g_out nnz in
          Array.for_all2 U.approx_equal got expected);
    }
  in
  (instance, func)

let instance ?seed ~rows ~cols ~per_row () =
  fst (build ?seed ~rows ~cols ~per_row ())

let dae_instance ?seed ~rows ~cols ~per_row () =
  let inst, func = build ?seed ~rows ~cols ~per_row () in
  let info = Mosaic_compiler.Dae.slice func in
  Program.add_func inst.Runner.program info.Mosaic_compiler.Dae.access;
  Program.add_func inst.Runner.program info.Mosaic_compiler.Dae.execute;
  (inst, info)
