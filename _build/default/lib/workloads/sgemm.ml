open Mosaic_ir
module B = Builder
module U = Kernel_util

let host_gemm ~m ~n ~k a bm =
  let c = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for kk = 0 to k - 1 do
        acc := !acc +. (a.((i * k) + kk) *. bm.((kk * n) + j))
      done;
      c.((i * n) + j) <- !acc
    done
  done;
  c

let instance ?(seed = 42) ?(accel = false) ~m ~n ~k () =
  let prog = Program.create () in
  let ga = Program.alloc prog "A" ~elems:(m * k) ~elem_size:4 in
  let gb = Program.alloc prog "B" ~elems:(k * n) ~elem_size:4 in
  let gc = Program.alloc prog "C" ~elems:(m * n) ~elem_size:4 in
  let kernel = if accel then "sgemm_accel" else "sgemm" in
  let _ =
    if accel then
      B.define prog kernel ~nparams:3 (fun b ->
          let pm = B.param b 0 and pn = B.param b 1 and pk = B.param b 2 in
          (* Only tile 0 invokes the accelerator. *)
          B.if_ b
            (B.icmp b Op.Eq B.tid (B.imm 0))
            (fun () ->
              B.accel b "gemm"
                [ pm; pn; pk; B.glob ga; B.glob gb; B.glob gc ]);
          B.ret b ())
    else
      B.define prog kernel ~nparams:3 (fun b ->
          let pm = B.param b 0 and pn = B.param b 1 and pk = B.param b 2 in
          let lo, hi = U.spmd_slice b ~total:pm in
          B.for_ b ~from:lo ~to_:hi (fun i ->
              B.for_ b ~from:(B.imm 0) ~to_:pn (fun j ->
                  let acc = B.var b (B.fimm 0.0) in
                  let row = B.mul b i pk in
                  B.for_ b ~from:(B.imm 0) ~to_:pk (fun kk ->
                      let av =
                        B.load b ~size:4 (B.elem b ga (B.add b row kk))
                      in
                      let bv =
                        B.load b ~size:4
                          (B.elem b gb (B.add b (B.mul b kk pn) j))
                      in
                      B.assign b ~var:acc (B.fadd b acc (B.fmul b av bv)));
                  B.store b ~size:4
                    ~addr:(B.elem b gc (B.add b (B.mul b i pn) j))
                    acc));
          B.ret b ())
  in
  let av = Datasets.random_floats ~seed (m * k) in
  let bv = Datasets.random_floats ~seed:(seed + 1) (k * n) in
  let expected = host_gemm ~m ~n ~k av bv in
  {
    Runner.name = kernel;
    program = prog;
    kernel;
    args = [ Value.of_int m; Value.of_int n; Value.of_int k ];
    setup =
      (fun it ->
        U.write_floats it ga av;
        U.write_floats it gb bv);
    check =
      (fun it ->
        let got = U.read_floats it gc (m * n) in
        Array.for_all2 U.approx_equal got expected);
  }

let dae_instance ?seed ~m ~n ~k () =
  let inst = instance ?seed ~accel:false ~m ~n ~k () in
  let func = Program.func_exn inst.Runner.program "sgemm" in
  let info = Mosaic_compiler.Dae.slice func in
  Program.add_func inst.Runner.program info.Mosaic_compiler.Dae.access;
  Program.add_func inst.Runner.program info.Mosaic_compiler.Dae.execute;
  (inst, info)
