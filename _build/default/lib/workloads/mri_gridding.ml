open Mosaic_ir
module B = Builder
module U = Kernel_util

(* Each sample lands between two grid cells and contributes
   exp-weighted value to both (a 1D cut of the gridding window). *)
let instance ?(seed = 29) ~samples ~grid () =
  if grid < 4 then invalid_arg "Mri_gridding.instance: grid too small";
  let prog = Program.create () in
  let g_pos = Program.alloc prog "pos" ~elems:samples ~elem_size:4 in
  let g_val = Program.alloc prog "sval" ~elems:samples ~elem_size:4 in
  let g_grid = Program.alloc prog "grid" ~elems:grid ~elem_size:4 in
  let scale = float_of_int (grid - 2) in
  let _ =
    B.define prog "mri-gridding" ~nparams:1 (fun b ->
        let nsamp = B.param b 0 in
        let lo, hi = U.spmd_slice b ~total:nsamp in
        B.for_ b ~from:lo ~to_:hi (fun s ->
            let pos = B.load b ~size:4 (B.elem b g_pos s) in
            let v = B.load b ~size:4 (B.elem b g_val s) in
            let scaled = B.fmul b pos (B.fimm scale) in
            let cell_f = B.math1 b Op.Floor scaled in
            let cell = B.fptosi b cell_f in
            let frac = B.fsub b scaled cell_f in
            (* Gaussian weights for the two neighbouring cells. *)
            let w0 =
              B.math1 b Op.Exp
                (B.fmul b (B.fimm (-2.0)) (B.fmul b frac frac))
            in
            let one_m = B.fsub b (B.fimm 1.0) frac in
            let w1 =
              B.math1 b Op.Exp
                (B.fmul b (B.fimm (-2.0)) (B.fmul b one_m one_m))
            in
            ignore
              (B.atomic b Op.Rmw_add ~size:4 ~addr:(B.elem b g_grid cell)
                 (B.fmul b v w0));
            ignore
              (B.atomic b Op.Rmw_add ~size:4
                 ~addr:(B.elem b g_grid (B.add b cell (B.imm 1)))
                 (B.fmul b v w1)));
        B.ret b ())
  in
  let pos = Datasets.random_floats ~seed samples in
  let sval = Datasets.random_floats ~seed:(seed + 1) samples in
  let expected = Array.make grid 0.0 in
  for s = 0 to samples - 1 do
    let scaled = pos.(s) *. scale in
    let cell = int_of_float (Float.floor scaled) in
    let frac = scaled -. Float.floor scaled in
    expected.(cell) <- expected.(cell) +. (sval.(s) *. exp (-2.0 *. frac *. frac));
    expected.(cell + 1) <-
      expected.(cell + 1)
      +. (sval.(s) *. exp (-2.0 *. (1.0 -. frac) *. (1.0 -. frac)))
  done;
  {
    Runner.name = "mri-gridding";
    program = prog;
    kernel = "mri-gridding";
    args = [ Value.of_int samples ];
    setup =
      (fun it ->
        U.write_floats it g_pos pos;
        U.write_floats it g_val sval;
        U.write_floats it g_grid (Array.make grid 0.0));
    check =
      (fun it ->
        let got = U.read_floats it g_grid grid in
        Array.for_all2 U.approx_equal got expected);
  }
