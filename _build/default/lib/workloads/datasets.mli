(** Synthetic dataset generators.

    Stand-ins for the Parboil inputs: random CSR graphs and sparse matrices,
    random float arrays, point sets. All draw from seeded {!Mosaic_util.Rng}
    so every run of the suite sees identical data. *)

(** A graph in CSR form. [row_ptr] has [n+1] entries; [cols.(k)] are
    neighbor ids. *)
type csr = { n : int; row_ptr : int array; cols : int array }

(** [random_graph ~seed ~n ~degree] with uniformly random neighbors
    (no self-loops; duplicates possible, as in real edge lists). *)
val random_graph : seed:int -> n:int -> degree:int -> csr

(** Random bipartite graph: [n_left] nodes each with [degree] random
    neighbors among [n_right]. *)
val random_bipartite : seed:int -> n_left:int -> n_right:int -> degree:int -> csr

(** Sparse matrix in CSR with float values attached per entry. *)
type sparse = { shape : csr; values : float array }

val random_sparse : seed:int -> rows:int -> cols:int -> per_row:int -> sparse

val random_floats : seed:int -> int -> float array

(** Random ints in [\[0, bound)]. *)
val random_ints : seed:int -> bound:int -> int -> int array

(** 3D points in the unit cube, flattened as x,y,z triples. *)
val random_points : seed:int -> int -> float array

(** Single-source shortest (hop) distances by host-side BFS; unreachable
    nodes get [max_int]. Used to check the BFS workload. *)
val bfs_distances : csr -> source:int -> int array
