open Mosaic_ir
module B = Builder
module U = Kernel_util

let instance ?(seed = 7) ~rows ~cols ~per_row () =
  let sp = Datasets.random_sparse ~seed ~rows ~cols ~per_row in
  let nnz = Array.length sp.Datasets.shape.Datasets.cols in
  let prog = Program.create () in
  let g_rp = Program.alloc prog "row_ptr" ~elems:(rows + 1) ~elem_size:4 in
  let g_cols = Program.alloc prog "cols" ~elems:nnz ~elem_size:4 in
  let g_vals = Program.alloc prog "vals" ~elems:nnz ~elem_size:4 in
  let g_x = Program.alloc prog "x" ~elems:cols ~elem_size:4 in
  let g_y = Program.alloc prog "y" ~elems:rows ~elem_size:4 in
  let _ =
    B.define prog "spmv" ~nparams:1 (fun b ->
        let nrows = B.param b 0 in
        let lo, hi = U.spmd_slice b ~total:nrows in
        B.for_ b ~from:lo ~to_:hi (fun i ->
            let acc = B.var b (B.fimm 0.0) in
            let row_start = B.load b ~size:4 (B.elem b g_rp i) in
            let row_end =
              B.load b ~size:4 (B.elem b g_rp (B.add b i (B.imm 1)))
            in
            B.for_ b ~from:row_start ~to_:row_end (fun kk ->
                let c = B.load b ~size:4 (B.elem b g_cols kk) in
                let v = B.load b ~size:4 (B.elem b g_vals kk) in
                let xv = B.load b ~size:4 (B.elem b g_x c) in
                B.assign b ~var:acc (B.fadd b acc (B.fmul b v xv)));
            B.store b ~size:4 ~addr:(B.elem b g_y i) acc);
        B.ret b ())
  in
  let xv = Datasets.random_floats ~seed:(seed + 2) cols in
  let expected =
    Array.init rows (fun i ->
        let acc = ref 0.0 in
        for k = sp.Datasets.shape.Datasets.row_ptr.(i)
            to sp.Datasets.shape.Datasets.row_ptr.(i + 1) - 1 do
          acc :=
            !acc
            +. (sp.Datasets.values.(k) *. xv.(sp.Datasets.shape.Datasets.cols.(k)))
        done;
        !acc)
  in
  {
    Runner.name = "spmv";
    program = prog;
    kernel = "spmv";
    args = [ Value.of_int rows ];
    setup =
      (fun it ->
        U.write_ints it g_rp sp.Datasets.shape.Datasets.row_ptr;
        U.write_ints it g_cols sp.Datasets.shape.Datasets.cols;
        U.write_floats it g_vals sp.Datasets.values;
        U.write_floats it g_x xv);
    check =
      (fun it ->
        let got = U.read_floats it g_y rows in
        Array.for_all2 U.approx_equal got expected);
  }
