(** Parboil HISTO: histogram of an input image into [bins] counters.

    Substitution note: Parboil's histogram saturates each counter at 255
    with a read-modify-write; SPMD tiles here use atomic adds on the shared
    histogram instead (lossless counting), which preserves the
    scattered-update memory behaviour while staying deterministic under any
    interleaving. The saturating variant lives in the ["histo"] accelerator
    model. *)

val instance : ?seed:int -> n:int -> bins:int -> unit -> Runner.t
