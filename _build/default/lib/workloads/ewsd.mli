(** EWSD: element-wise product of a sparse and a dense matrix (§VII-B,
    Fig 12) — the memory-bound half of Sinkhorn-style alternating
    sparse/dense workloads. For each sparse nonzero (i, j, v), computes
    [out = v * dense(i, j)]: irregular dense gathers feeding a multiply,
    the textbook shape for DAE latency tolerance. SPMD over rows. *)

val instance :
  ?seed:int -> rows:int -> cols:int -> per_row:int -> unit -> Runner.t

(** DAE-sliced variant, as in {!Projection.dae_instance}. *)
val dae_instance :
  ?seed:int ->
  rows:int ->
  cols:int ->
  per_row:int ->
  unit ->
  Runner.t * Mosaic_compiler.Dae.info
