(** Keras TensorFlow case study (§VII-C, Fig 14).

    Three DNN training workloads lowered from layer descriptions, the way
    the paper's Keras API pass maps layer calls onto accelerator
    invocations. Each layer lowers either to a real IR loop nest (the CPU
    path) or to an accelerator invocation, depending on [accel] and on
    whether an accelerator exists for it: forward convolution, dense,
    ReLU, pooling, batch-norm and dropout are accelerated; convolution
    backprop, random walks, and embedding gathers are not (exactly the gaps
    the paper calls out for ConvNet and GraphSage).

    One training step (forward + backward) per instance; single tile. *)

type model = Convnet | Graphsage | Recsys

val name : model -> string

val all : model list

(** [instance model ~accel] builds the training-step kernel. With
    [accel:false] everything runs as core loop nests (the out-of-order
    server baseline); with [accel:true] supported layers become accelerator
    invocations. *)
val instance : model -> accel:bool -> Runner.t
