open Mosaic_ir
module B = Builder
module U = Kernel_util

let build ?(seed = 37) ~n_left ~n_right ~degree () =
  let g = Datasets.random_bipartite ~seed ~n_left ~n_right ~degree in
  let nnz = Array.length g.Datasets.cols in
  let weights = Datasets.random_floats ~seed:(seed + 1) n_right in
  let prog = Program.create () in
  let g_rp = Program.alloc prog "row_ptr" ~elems:(n_left + 1) ~elem_size:4 in
  let g_cols = Program.alloc prog "cols" ~elems:nnz ~elem_size:4 in
  let g_w = Program.alloc prog "weight" ~elems:n_right ~elem_size:4 in
  let g_proj =
    Program.alloc prog "proj" ~elems:(n_right * n_right) ~elem_size:4
  in
  let func =
    B.define prog "projection" ~nparams:2 (fun b ->
        let nl = B.param b 0 and nr = B.param b 1 in
        let lo, hi = U.spmd_slice b ~total:nl in
        B.for_ b ~from:lo ~to_:hi (fun u ->
            let s = B.load b ~size:4 (B.elem b g_rp u) in
            let e = B.load b ~size:4 (B.elem b g_rp (B.add b u (B.imm 1))) in
            B.for_ b ~from:s ~to_:e (fun i ->
                let a = B.load b ~size:4 (B.elem b g_cols i) in
                let wa = B.load b ~size:4 (B.elem b g_w a) in
                let arow = B.mul b a nr in
                B.for_ b ~from:s ~to_:e (fun j ->
                    let bcol = B.load b ~size:4 (B.elem b g_cols j) in
                    B.if_ b
                      (B.icmp b Op.Ne bcol a)
                      (fun () ->
                        let wb = B.load b ~size:4 (B.elem b g_w bcol) in
                        let contrib = B.fmul b wa wb in
                        ignore
                          (B.atomic b Op.Rmw_add ~size:4
                             ~addr:(B.elem b g_proj (B.add b arow bcol))
                             contrib)))));
        B.ret b ())
  in
  let expected = Hashtbl.create 4096 in
  for u = 0 to n_left - 1 do
    for i = g.Datasets.row_ptr.(u) to g.Datasets.row_ptr.(u + 1) - 1 do
      let a = g.Datasets.cols.(i) in
      for j = g.Datasets.row_ptr.(u) to g.Datasets.row_ptr.(u + 1) - 1 do
        let bcol = g.Datasets.cols.(j) in
        if bcol <> a then begin
          let key = (a * n_right) + bcol in
          let cur = Option.value ~default:0.0 (Hashtbl.find_opt expected key) in
          Hashtbl.replace expected key (cur +. (weights.(a) *. weights.(bcol)))
        end
      done
    done
  done;
  let instance =
    {
      Runner.name = "projection";
      program = prog;
      kernel = "projection";
      args = [ Value.of_int n_left; Value.of_int n_right ];
      setup =
        (fun it ->
          U.write_ints it g_rp g.Datasets.row_ptr;
          U.write_ints it g_cols g.Datasets.cols;
          U.write_floats it g_w weights;
          (* Projection entries must exist as floats for FP atomics. *)
          Hashtbl.iter
            (fun key _ ->
              Mosaic_trace.Interp.poke_global it g_proj key (Value.of_float 0.0))
            expected);
      check =
        (fun it ->
          Hashtbl.fold
            (fun key v acc ->
              acc
              && U.approx_equal
                   (Value.to_float (Mosaic_trace.Interp.peek_global it g_proj key))
                   v)
            expected true);
    }
  in
  (instance, func)

let instance ?seed ~n_left ~n_right ~degree () =
  fst (build ?seed ~n_left ~n_right ~degree ())

let dae_instance ?seed ~n_left ~n_right ~degree () =
  let inst, func = build ?seed ~n_left ~n_right ~degree () in
  let info = Mosaic_compiler.Dae.slice func in
  Program.add_func inst.Runner.program info.Mosaic_compiler.Dae.access;
  Program.add_func inst.Runner.program info.Mosaic_compiler.Dae.execute;
  (inst, info)
