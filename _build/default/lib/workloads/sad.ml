open Mosaic_ir
module B = Builder
module U = Kernel_util

let instance ?(seed = 17) ~blocks ~block_size ~offsets () =
  let n = (blocks * block_size) + offsets in
  let prog = Program.create () in
  let g_cur = Program.alloc prog "cur" ~elems:n ~elem_size:4 in
  let g_ref = Program.alloc prog "reff" ~elems:n ~elem_size:4 in
  let g_sad = Program.alloc prog "sad" ~elems:(blocks * offsets) ~elem_size:4 in
  let _ =
    B.define prog "sad" ~nparams:3 (fun b ->
        let pblocks = B.param b 0 in
        let psize = B.param b 1 in
        let poffsets = B.param b 2 in
        let lo, hi = U.spmd_slice b ~total:pblocks in
        B.for_ b ~from:lo ~to_:hi (fun mb ->
            let base = B.mul b mb psize in
            B.for_ b ~from:(B.imm 0) ~to_:poffsets (fun off ->
                let acc = B.var b (B.imm 0) in
                B.for_ b ~from:(B.imm 0) ~to_:psize (fun p ->
                    let cidx = B.add b base p in
                    let c = B.load b ~size:4 (B.elem b g_cur cidx) in
                    let r =
                      B.load b ~size:4 (B.elem b g_ref (B.add b cidx off))
                    in
                    let d = B.sub b c r in
                    let abs_d =
                      B.select b
                        (B.icmp b Op.Lt d (B.imm 0))
                        (B.sub b (B.imm 0) d)
                        d
                    in
                    B.assign b ~var:acc (B.add b acc abs_d));
                B.store b ~size:4
                  ~addr:(B.elem b g_sad (B.add b (B.mul b mb poffsets) off))
                  acc));
        B.ret b ())
  in
  let cur = Datasets.random_ints ~seed ~bound:256 n in
  let reff = Datasets.random_ints ~seed:(seed + 1) ~bound:256 n in
  let expected =
    Array.init (blocks * offsets) (fun i ->
        let mb = i / offsets and off = i mod offsets in
        let acc = ref 0 in
        for pnt = 0 to block_size - 1 do
          acc := !acc + abs (cur.((mb * block_size) + pnt) - reff.((mb * block_size) + pnt + off))
        done;
        !acc)
  in
  {
    Runner.name = "sad";
    program = prog;
    kernel = "sad";
    args = [ Value.of_int blocks; Value.of_int block_size; Value.of_int offsets ];
    setup =
      (fun it ->
        U.write_ints it g_cur cur;
        U.write_ints it g_ref reff);
    check =
      (fun it ->
        let got = U.read_ints it g_sad (blocks * offsets) in
        got = expected);
  }
