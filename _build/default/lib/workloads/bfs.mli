(** Parboil BFS: single-source breadth-first distances on a CSR graph.

    Substitution note: Parboil's queue-based BFS is replaced by the
    level-synchronized relaxation formulation (Bellman-Ford on unit
    weights): sweeps of atomic-min distance relaxations separated by a spin
    barrier built from atomics. It converges to exact BFS distances and
    keeps the behaviours the paper leans on — data-dependent control flow,
    irregular neighbor gathers, and the atomic read-modify-writes that make
    BFS the latency-bound, hard-to-model-scaling benchmark of Fig 7. *)

val instance :
  ?seed:int -> n:int -> degree:int -> unit -> Runner.t

(** Distance assigned to unreached nodes. *)
val unreachable : int
