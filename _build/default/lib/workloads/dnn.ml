open Mosaic_ir
module B = Builder
module U = Kernel_util

type model = Convnet | Graphsage | Recsys

let name = function
  | Convnet -> "convnet"
  | Graphsage -> "graphsage"
  | Recsys -> "recsys"

let all = [ Convnet; Graphsage; Recsys ]

type layer =
  | Conv of { cin : int; cout : int; hw : int; k : int }
  | Dense of { nin : int; nout : int }
  | Relu of int
  | Pool of { c : int; hw : int; p : int }
  | Batchnorm of int
  | Dropout of int
  | Random_walk of { nodes : int; deg : int; walks : int; len : int }
  | Embedding of { visited : int; dim : int }

let layers_of = function
  | Convnet ->
      [
        Conv { cin = 4; cout = 8; hw = 12; k = 3 };
        Relu (8 * 12 * 12);
        Batchnorm (8 * 12 * 12);
        Conv { cin = 8; cout = 8; hw = 12; k = 3 };
        Relu (8 * 12 * 12);
        Conv { cin = 8; cout = 8; hw = 12; k = 3 };
        Relu (8 * 12 * 12);
        Pool { c = 8; hw = 12; p = 2 };
        Dense { nin = 8 * 6 * 6; nout = 64 };
        Relu 64;
        Dense { nin = 64; nout = 10 };
      ]
  | Graphsage ->
      [
        Random_walk { nodes = 512; deg = 8; walks = 128; len = 16 };
        Embedding { visited = 128 * 16; dim = 32 };
        Dense { nin = 32; nout = 256 };
        Relu 256;
        Dense { nin = 256; nout = 128 };
        Relu 128;
        Dense { nin = 128; nout = 32 };
      ]
  | Recsys ->
      [
        Dense { nin = 256; nout = 512 };
        Relu 512;
        Batchnorm 512;
        Dropout 512;
        Dense { nin = 512; nout = 256 };
        Relu 256;
        Batchnorm 256;
        Dropout 256;
        Dense { nin = 256; nout = 64 };
      ]

(* Whether an accelerator exists for the layer in the given phase (the
   paper: no conv-backprop accelerator; random walk and embedding are not
   handled by accelerators at all). *)
let accelerable layer ~backward =
  match layer with
  | Conv _ -> not backward
  | Dense _ | Relu _ | Pool _ | Batchnorm _ | Dropout _ -> true
  | Random_walk _ | Embedding _ -> false

(* --- CPU loop-nest emitters --- *)

let clamp b x upper =
  let zero = B.imm 0 in
  let low = B.select b (B.icmp b Op.Lt x zero) zero x in
  B.select b (B.icmp b Op.Gt low (B.imm upper)) (B.imm upper) low

let conv_loops b ~cin ~cout ~hw ~k ~xin ~wts ~out =
  B.for_ b ~from:(B.imm 0) ~to_:(B.imm cout) (fun co ->
      B.for_ b ~from:(B.imm 0) ~to_:(B.imm hw) (fun i ->
          B.for_ b ~from:(B.imm 0) ~to_:(B.imm hw) (fun j ->
              let acc = B.var b (B.fimm 0.0) in
              B.for_ b ~from:(B.imm 0) ~to_:(B.imm cin) (fun ci ->
                  B.for_ b ~from:(B.imm 0) ~to_:(B.imm k) (fun di ->
                      B.for_ b ~from:(B.imm 0) ~to_:(B.imm k) (fun dj ->
                          let pi = clamp b (B.sub b (B.add b i di) (B.imm 1)) (hw - 1) in
                          let pj = clamp b (B.sub b (B.add b j dj) (B.imm 1)) (hw - 1) in
                          let xidx =
                            B.add b (B.mul b (B.add b (B.mul b ci (B.imm hw)) pi) (B.imm hw)) pj
                          in
                          let widx =
                            B.add b
                              (B.mul b
                                 (B.add b
                                    (B.mul b (B.add b (B.mul b co (B.imm cin)) ci) (B.imm k))
                                    di)
                                 (B.imm k))
                              dj
                          in
                          let x = B.load b ~size:4 (B.elem b xin xidx) in
                          let wv = B.load b ~size:4 (B.elem b wts widx) in
                          B.assign b ~var:acc (B.fadd b acc (B.fmul b x wv)))));
              let oidx = B.add b (B.mul b (B.add b (B.mul b co (B.imm hw)) i) (B.imm hw)) j in
              B.store b ~size:4 ~addr:(B.elem b out oidx) acc)))

let dense_loops b ~nin ~nout ~xin ~wts ~out =
  B.for_ b ~from:(B.imm 0) ~to_:(B.imm nout) (fun o ->
      let acc = B.var b (B.fimm 0.0) in
      let row = B.mul b o (B.imm nin) in
      B.for_ b ~from:(B.imm 0) ~to_:(B.imm nin) (fun i ->
          let x = B.load b ~size:4 (B.elem b xin i) in
          let wv = B.load b ~size:4 (B.elem b wts (B.add b row i)) in
          B.assign b ~var:acc (B.fadd b acc (B.fmul b x wv)));
      B.store b ~size:4 ~addr:(B.elem b out o) acc)

let elementwise_loops b ~n ~xin ~out ~f =
  B.for_ b ~from:(B.imm 0) ~to_:(B.imm n) (fun i ->
      let x = B.load b ~size:4 (B.elem b xin i) in
      B.store b ~size:4 ~addr:(B.elem b out i) (f i x))

let relu_loops b ~n ~xin ~out =
  elementwise_loops b ~n ~xin ~out ~f:(fun _ x ->
      B.select b (B.fcmp b Op.Gt x (B.fimm 0.0)) x (B.fimm 0.0))

let batchnorm_loops b ~n ~xin ~out =
  elementwise_loops b ~n ~xin ~out ~f:(fun _ x ->
      B.fadd b (B.fmul b x (B.fimm 1.01)) (B.fimm 0.01))

let dropout_loops b ~n ~xin ~mask ~out =
  elementwise_loops b ~n ~xin ~out ~f:(fun i x ->
      B.fmul b x (B.load b ~size:4 (B.elem b mask i)))

let pool_loops b ~c ~hw ~p ~xin ~out =
  let ohw = hw / p in
  B.for_ b ~from:(B.imm 0) ~to_:(B.imm c) (fun ch ->
      B.for_ b ~from:(B.imm 0) ~to_:(B.imm ohw) (fun i ->
          B.for_ b ~from:(B.imm 0) ~to_:(B.imm ohw) (fun j ->
              let best = B.var b (B.fimm (-1e30)) in
              B.for_ b ~from:(B.imm 0) ~to_:(B.imm p) (fun di ->
                  B.for_ b ~from:(B.imm 0) ~to_:(B.imm p) (fun dj ->
                      let pi = B.add b (B.mul b i (B.imm p)) di in
                      let pj = B.add b (B.mul b j (B.imm p)) dj in
                      let idx =
                        B.add b (B.mul b (B.add b (B.mul b ch (B.imm hw)) pi) (B.imm hw)) pj
                      in
                      let x = B.load b ~size:4 (B.elem b xin idx) in
                      B.assign b ~var:best
                        (B.select b (B.fcmp b Op.Gt x best) x best)));
              let oidx =
                B.add b (B.mul b (B.add b (B.mul b ch (B.imm ohw)) i) (B.imm ohw)) j
              in
              B.store b ~size:4 ~addr:(B.elem b out oidx) best)))

let walk_loops b ~nodes ~deg ~walks ~len ~nbr ~visited =
  B.for_ b ~from:(B.imm 0) ~to_:(B.imm walks) (fun w ->
      let cur = B.var b (B.srem b (B.mul b w (B.imm 31)) (B.imm nodes)) in
      B.for_ b ~from:(B.imm 0) ~to_:(B.imm len) (fun s ->
          let slot = B.srem b s (B.imm deg) in
          let nxt =
            B.load b ~size:4 (B.elem b nbr (B.add b (B.mul b cur (B.imm deg)) slot))
          in
          B.assign b ~var:cur nxt;
          B.store b ~size:4
            ~addr:(B.elem b visited (B.add b (B.mul b w (B.imm len)) s))
            cur))

let embed_loops b ~visited_n ~dim ~visited ~emb ~pooled =
  B.for_ b ~from:(B.imm 0) ~to_:(B.imm visited_n) (fun t ->
      let id = B.load b ~size:4 (B.elem b visited t) in
      let row = B.mul b id (B.imm dim) in
      B.for_ b ~from:(B.imm 0) ~to_:(B.imm dim) (fun d ->
          let e = B.load b ~size:4 (B.elem b emb (B.add b row d)) in
          let cur = B.load b ~size:4 (B.elem b pooled d) in
          B.store b ~size:4 ~addr:(B.elem b pooled d) (B.fadd b cur e)))

(* --- Instance construction --- *)

let instance model ~accel =
  let layers = layers_of model in
  let prog = Program.create () in
  let counter = ref 0 in
  let galloc n =
    incr counter;
    Program.alloc prog (Printf.sprintf "buf%d" !counter) ~elems:(Stdlib.max n 1)
      ~elem_size:4
  in
  let float_inits : (Program.global * float array) list ref = ref [] in
  let int_inits : (Program.global * int array) list ref = ref [] in
  let seeded = ref 100 in
  let fresh_seed () =
    incr seeded;
    !seeded
  in
  let falloc n =
    let g = galloc n in
    float_inits := (g, Datasets.random_floats ~seed:(fresh_seed ()) n) :: !float_inits;
    g
  in
  let kernel = Printf.sprintf "%s_%s" (name model) (if accel then "soc" else "cpu") in
  let _ =
    B.define prog kernel ~nparams:0 (fun b ->
        (* Per-layer buffers created as we walk the network. *)
        let emit_layer ~backward ~xin layer =
          let use_accel = accel && accelerable layer ~backward in
          match layer with
          | Conv { cin; cout; hw; k } ->
              let out = galloc (cout * hw * hw) in
              let wts = falloc (cout * cin * k * k) in
              if use_accel then begin
                B.accel b "conv"
                  [ B.imm cin; B.imm cout; B.imm hw; B.imm hw; B.imm k ];
                out
              end
              else begin
                conv_loops b ~cin ~cout ~hw ~k ~xin ~wts ~out;
                if backward then begin
                  (* dW pass: second nest of the same shape. *)
                  let scratch = galloc (cout * hw * hw) in
                  conv_loops b ~cin ~cout ~hw ~k ~xin ~wts ~out:scratch
                end;
                out
              end
          | Dense { nin; nout } ->
              let nin, nout = if backward then (nout, nin) else (nin, nout) in
              let out = galloc nout in
              let wts = falloc (nin * nout) in
              if use_accel then begin
                B.accel b "dense" [ B.imm nin; B.imm nout ];
                if backward then B.accel b "dense" [ B.imm nout; B.imm nin ];
                out
              end
              else begin
                dense_loops b ~nin ~nout ~xin ~wts ~out;
                if backward then begin
                  let scratch = galloc nin in
                  dense_loops b ~nin:nout ~nout:nin ~xin:out ~wts ~out:scratch
                end;
                out
              end
          | Relu n ->
              let out = galloc n in
              if use_accel then B.accel b "relu" [ B.imm n ]
              else relu_loops b ~n ~xin ~out;
              out
          | Batchnorm n ->
              let out = galloc n in
              if use_accel then B.accel b "batchnorm" [ B.imm n ]
              else batchnorm_loops b ~n ~xin ~out;
              out
          | Dropout n ->
              let out = galloc n in
              if use_accel then B.accel b "elementwise" [ B.imm n ]
              else begin
                let mask = falloc n in
                dropout_loops b ~n ~xin ~mask ~out
              end;
              out
          | Pool { c; hw; p } ->
              let out = galloc (c * (hw / p) * (hw / p)) in
              if use_accel then B.accel b "pool" [ B.imm c; B.imm hw; B.imm hw; B.imm p ]
              else pool_loops b ~c ~hw ~p ~xin ~out;
              out
          | Random_walk { nodes; deg; walks; len } ->
              let nbr = galloc (nodes * deg) in
              int_inits :=
                (nbr, Datasets.random_ints ~seed:(fresh_seed ()) ~bound:nodes (nodes * deg))
                :: !int_inits;
              let visited = galloc (walks * len) in
              walk_loops b ~nodes ~deg ~walks ~len ~nbr ~visited;
              visited
          | Embedding { visited; dim } ->
              let emb = falloc (512 * dim) in
              let pooled = galloc dim in
              embed_loops b ~visited_n:visited ~dim ~visited:xin ~emb ~pooled;
              pooled
        in
        let input = falloc 1024 in
        let forward_out =
          List.fold_left
            (fun xin layer -> emit_layer ~backward:false ~xin layer)
            input layers
        in
        (* Backward sweep over the differentiable layers, in reverse. *)
        let bwd_layers =
          List.filter
            (fun l ->
              match l with Random_walk _ | Embedding _ -> false | _ -> true)
            (List.rev layers)
        in
        let _ =
          List.fold_left
            (fun xin layer -> emit_layer ~backward:true ~xin layer)
            forward_out bwd_layers
        in
        B.ret b ())
  in
  let float_inits = !float_inits and int_inits = !int_inits in
  {
    Runner.name = kernel;
    program = prog;
    kernel;
    args = [];
    setup =
      (fun it ->
        List.iter (fun (g, arr) -> U.write_floats it g arr) float_inits;
        List.iter (fun (g, arr) -> U.write_ints it g arr) int_inits);
    check = (fun _ -> true);
  }
