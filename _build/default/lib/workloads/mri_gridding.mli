(** Parboil MRI-GRIDDING: scatter non-Cartesian k-space samples onto a
    regular 1D-flattened grid with Gaussian kernel weights — irregular
    atomic scatters plus [exp] per sample. SPMD over samples. *)

val instance : ?seed:int -> samples:int -> grid:int -> unit -> Runner.t
