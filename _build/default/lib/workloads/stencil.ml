open Mosaic_ir
module B = Builder
module U = Kernel_util

let c0 = 0.5

let c1 = 0.125

let instance ?(seed = 11) ~h ~w () =
  if h < 3 || w < 3 then invalid_arg "Stencil.instance: grid too small";
  let prog = Program.create () in
  let g_in = Program.alloc prog "grid_in" ~elems:(h * w) ~elem_size:4 in
  let g_out = Program.alloc prog "grid_out" ~elems:(h * w) ~elem_size:4 in
  let _ =
    B.define prog "stencil" ~nparams:2 (fun b ->
        let ph = B.param b 0 and pw = B.param b 1 in
        let interior = B.sub b ph (B.imm 2) in
        let lo, hi = U.spmd_slice b ~total:interior in
        B.for_ b ~from:lo ~to_:hi (fun r ->
            let i = B.add b r (B.imm 1) in
            B.for_ b ~from:(B.imm 1) ~to_:(B.sub b pw (B.imm 1)) (fun j ->
                let idx = B.add b (B.mul b i pw) j in
                let center = B.load b ~size:4 (B.elem b g_in idx) in
                let north =
                  B.load b ~size:4 (B.elem b g_in (B.sub b idx pw))
                in
                let south =
                  B.load b ~size:4 (B.elem b g_in (B.add b idx pw))
                in
                let west =
                  B.load b ~size:4 (B.elem b g_in (B.sub b idx (B.imm 1)))
                in
                let east =
                  B.load b ~size:4 (B.elem b g_in (B.add b idx (B.imm 1)))
                in
                let ring =
                  B.fadd b (B.fadd b north south) (B.fadd b west east)
                in
                let value =
                  B.fadd b
                    (B.fmul b center (B.fimm c0))
                    (B.fmul b ring (B.fimm c1))
                in
                B.store b ~size:4 ~addr:(B.elem b g_out idx) value));
        B.ret b ())
  in
  let grid = Datasets.random_floats ~seed (h * w) in
  let expected = Array.copy grid in
  for i = 1 to h - 2 do
    for j = 1 to w - 2 do
      let idx = (i * w) + j in
      expected.(idx) <-
        (c0 *. grid.(idx))
        +. (c1
            *. (grid.(idx - w) +. grid.(idx + w) +. grid.(idx - 1)
                +. grid.(idx + 1)))
    done
  done;
  {
    Runner.name = "stencil";
    program = prog;
    kernel = "stencil";
    args = [ Value.of_int h; Value.of_int w ];
    setup = (fun it -> U.write_floats it g_in grid);
    check =
      (fun it ->
        let got = U.read_floats it g_out (h * w) in
        let ok = ref true in
        for i = 1 to h - 2 do
          for j = 1 to w - 2 do
            let idx = (i * w) + j in
            if not (U.approx_equal got.(idx) expected.(idx)) then ok := false
          done
        done;
        !ok);
  }
