open Mosaic_ir
module B = Builder
module U = Kernel_util

let instance ?(seed = 47) ?(accel = false) ~dim ~rows ~cols ~per_row ~reps () =
  let sp = Datasets.random_sparse ~seed ~rows ~cols ~per_row in
  let nnz = Array.length sp.Datasets.shape.Datasets.cols in
  let dense = Datasets.random_floats ~seed:(seed + 1) (rows * cols) in
  let av = Datasets.random_floats ~seed:(seed + 2) (dim * dim) in
  let bv = Datasets.random_floats ~seed:(seed + 3) (dim * dim) in
  let prog = Program.create () in
  let ga = Program.alloc prog "A" ~elems:(dim * dim) ~elem_size:4 in
  let gb = Program.alloc prog "B" ~elems:(dim * dim) ~elem_size:4 in
  let gc = Program.alloc prog "C" ~elems:(dim * dim) ~elem_size:4 in
  let g_rp = Program.alloc prog "row_ptr" ~elems:(rows + 1) ~elem_size:4 in
  let g_cols = Program.alloc prog "cols" ~elems:nnz ~elem_size:4 in
  let g_vals = Program.alloc prog "vals" ~elems:nnz ~elem_size:4 in
  let g_dense = Program.alloc prog "dense" ~elems:(rows * cols) ~elem_size:4 in
  let g_out = Program.alloc prog "out" ~elems:nnz ~elem_size:4 in
  let g_bar = Program.alloc prog "barrier" ~elems:2 ~elem_size:4 in
  let kernel = if accel then "sinkhorn_accel" else "sinkhorn" in
  let _ =
    B.define prog kernel ~nparams:4 (fun b ->
        let pdim = B.param b 0
        and prows = B.param b 1
        and pcols = B.param b 2
        and preps = B.param b 3 in
        B.for_ b ~from:(B.imm 0) ~to_:preps (fun r ->
            (* Dense phase. *)
            (if accel then
               B.if_ b
                 (B.icmp b Op.Eq B.tid (B.imm 0))
                 (fun () ->
                   B.accel b "gemm"
                     [ pdim; pdim; pdim; B.glob ga; B.glob gb; B.glob gc ])
             else
               let lo, hi = U.spmd_slice b ~total:pdim in
               B.for_ b ~from:lo ~to_:hi (fun i ->
                   B.for_ b ~from:(B.imm 0) ~to_:pdim (fun j ->
                       let acc = B.var b (B.fimm 0.0) in
                       let row = B.mul b i pdim in
                       B.for_ b ~from:(B.imm 0) ~to_:pdim (fun kk ->
                           let x =
                             B.load b ~size:4 (B.elem b ga (B.add b row kk))
                           in
                           let y =
                             B.load b ~size:4
                               (B.elem b gb (B.add b (B.mul b kk pdim) j))
                           in
                           B.assign b ~var:acc (B.fadd b acc (B.fmul b x y)));
                       B.store b ~size:4
                         ~addr:(B.elem b gc (B.add b (B.mul b i pdim) j))
                         acc)));
            let two_r = B.mul b r (B.imm 2) in
            U.barrier b ~state:g_bar ~target:(B.add b two_r (B.imm 1));
            (* Sparse phase. *)
            let lo, hi = U.spmd_slice b ~total:prows in
            B.for_ b ~from:lo ~to_:hi (fun i ->
                let s = B.load b ~size:4 (B.elem b g_rp i) in
                let e =
                  B.load b ~size:4 (B.elem b g_rp (B.add b i (B.imm 1)))
                in
                let drow = B.mul b i pcols in
                B.for_ b ~from:s ~to_:e (fun kk ->
                    let j = B.load b ~size:4 (B.elem b g_cols kk) in
                    let v = B.load b ~size:4 (B.elem b g_vals kk) in
                    let d =
                      B.load b ~size:4 (B.elem b g_dense (B.add b drow j))
                    in
                    B.store b ~size:4 ~addr:(B.elem b g_out kk)
                      (B.fmul b v d)));
            U.barrier b ~state:g_bar ~target:(B.add b two_r (B.imm 2)));
        B.ret b ())
  in
  let expected_out =
    Array.init nnz (fun k ->
        let row = k / per_row in
        sp.Datasets.values.(k)
        *. dense.((row * cols) + sp.Datasets.shape.Datasets.cols.(k)))
  in
  let expected_c =
    if accel then [||]
    else
      Array.init (dim * dim) (fun idx ->
          let i = idx / dim and j = idx mod dim in
          let acc = ref 0.0 in
          for kk = 0 to dim - 1 do
            acc := !acc +. (av.((i * dim) + kk) *. bv.((kk * dim) + j))
          done;
          !acc)
  in
  {
    Runner.name = kernel;
    program = prog;
    kernel;
    args =
      [
        Value.of_int dim; Value.of_int rows; Value.of_int cols;
        Value.of_int reps;
      ];
    setup =
      (fun it ->
        U.write_floats it ga av;
        U.write_floats it gb bv;
        U.write_ints it g_rp sp.Datasets.shape.Datasets.row_ptr;
        U.write_ints it g_cols sp.Datasets.shape.Datasets.cols;
        U.write_floats it g_vals sp.Datasets.values;
        U.write_floats it g_dense dense;
        U.write_ints it g_bar [| 0; 0 |]);
    check =
      (fun it ->
        Array.for_all2 U.approx_equal (U.read_floats it g_out nnz) expected_out
        && (accel
           || Array.for_all2 U.approx_equal
                (U.read_floats it gc (dim * dim))
                expected_c));
  }
