lib/workloads/bfs.ml: Array Builder Datasets Kernel_util Mosaic_ir Mosaic_trace Op Program Runner Value
