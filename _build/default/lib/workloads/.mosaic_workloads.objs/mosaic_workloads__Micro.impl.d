lib/workloads/micro.ml: Array Builder Datasets Fun Kernel_util Mosaic_ir Mosaic_trace Mosaic_util Program Runner Value
