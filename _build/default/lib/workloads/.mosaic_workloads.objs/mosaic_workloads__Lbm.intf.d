lib/workloads/lbm.mli: Runner
