lib/workloads/mriq.mli: Runner
