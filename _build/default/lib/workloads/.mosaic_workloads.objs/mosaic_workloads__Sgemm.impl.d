lib/workloads/sgemm.ml: Array Builder Datasets Kernel_util Mosaic_compiler Mosaic_ir Op Program Runner Value
