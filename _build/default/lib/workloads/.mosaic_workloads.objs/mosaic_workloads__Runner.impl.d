lib/workloads/runner.ml: Mosaic_accel Mosaic_ir Mosaic_trace Printf
