lib/workloads/datasets.ml: Array Mosaic_util Queue
