lib/workloads/spmv.mli: Runner
