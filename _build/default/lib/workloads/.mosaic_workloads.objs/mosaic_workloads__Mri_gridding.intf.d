lib/workloads/mri_gridding.mli: Runner
