lib/workloads/runner.mli: Mosaic_ir Mosaic_trace
