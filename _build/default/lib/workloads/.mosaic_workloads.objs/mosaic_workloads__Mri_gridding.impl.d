lib/workloads/mri_gridding.ml: Array Builder Datasets Float Kernel_util Mosaic_ir Op Program Runner Value
