lib/workloads/sad.mli: Runner
