lib/workloads/tpacf.mli: Runner
