lib/workloads/stencil.ml: Array Builder Datasets Kernel_util Mosaic_ir Program Runner Value
