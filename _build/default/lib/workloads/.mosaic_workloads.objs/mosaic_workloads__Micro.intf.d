lib/workloads/micro.mli: Runner
