lib/workloads/dnn.mli: Runner
