lib/workloads/sgemm.mli: Mosaic_compiler Runner
