lib/workloads/histo.mli: Runner
