lib/workloads/projection.mli: Mosaic_compiler Runner
