lib/workloads/dnn.ml: Builder Datasets Kernel_util List Mosaic_ir Op Printf Program Runner Stdlib
