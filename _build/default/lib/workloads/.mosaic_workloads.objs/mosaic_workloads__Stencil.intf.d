lib/workloads/stencil.mli: Runner
