lib/workloads/histo.ml: Array Builder Datasets Kernel_util Mosaic_ir Op Program Runner Stdlib Value
