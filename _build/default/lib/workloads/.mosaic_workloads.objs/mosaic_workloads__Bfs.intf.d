lib/workloads/bfs.mli: Runner
