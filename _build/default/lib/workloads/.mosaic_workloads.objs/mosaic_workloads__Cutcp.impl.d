lib/workloads/cutcp.ml: Array Builder Datasets Kernel_util Mosaic_ir Op Program Runner Value
