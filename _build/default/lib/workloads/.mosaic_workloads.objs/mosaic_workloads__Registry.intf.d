lib/workloads/registry.mli: Runner
