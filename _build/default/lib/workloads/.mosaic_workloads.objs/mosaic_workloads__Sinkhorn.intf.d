lib/workloads/sinkhorn.mli: Runner
