lib/workloads/kernel_util.ml: Array Builder Float Mosaic_ir Mosaic_trace Op Value
