lib/workloads/datasets.mli:
