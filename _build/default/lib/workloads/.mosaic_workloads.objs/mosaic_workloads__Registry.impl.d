lib/workloads/registry.ml: Bfs Cutcp Ewsd Histo Lbm Mri_gridding Mriq Printf Projection Sad Sgemm Sinkhorn Spmv Stencil Tpacf
