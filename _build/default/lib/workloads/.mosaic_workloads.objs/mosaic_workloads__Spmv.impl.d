lib/workloads/spmv.ml: Array Builder Datasets Kernel_util Mosaic_ir Program Runner Value
