lib/workloads/projection.ml: Array Builder Datasets Hashtbl Kernel_util Mosaic_compiler Mosaic_ir Mosaic_trace Op Option Program Runner Value
