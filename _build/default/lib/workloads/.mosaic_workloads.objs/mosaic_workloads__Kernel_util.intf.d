lib/workloads/kernel_util.mli: Builder Instr Mosaic_ir Mosaic_trace Program
