lib/workloads/ewsd.ml: Array Builder Datasets Kernel_util Mosaic_compiler Mosaic_ir Program Runner Value
