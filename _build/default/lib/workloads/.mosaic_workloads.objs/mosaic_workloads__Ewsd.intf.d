lib/workloads/ewsd.mli: Mosaic_compiler Runner
