lib/workloads/cutcp.mli: Runner
