open Mosaic_ir
module B = Builder
module U = Kernel_util

let unreachable = 1 lsl 30

(* Level-synchronized relaxation: [iters] sweeps of atomic-min updates with
   a sense-style spin barrier (atomic arrival counter + generation word)
   between sweeps, so distance information propagates at least one hop per
   sweep regardless of how tiles interleave. *)
let instance ?(seed = 3) ~n ~degree () =
  let g = Datasets.random_graph ~seed ~n ~degree in
  let host = Datasets.bfs_distances g ~source:0 in
  let diameter =
    Array.fold_left
      (fun acc d -> if d <> max_int && d > acc then d else acc)
      0 host
  in
  let iters = diameter + 1 in
  let nnz = Array.length g.Datasets.cols in
  let prog = Program.create () in
  let g_rp = Program.alloc prog "row_ptr" ~elems:(n + 1) ~elem_size:4 in
  let g_cols = Program.alloc prog "cols" ~elems:nnz ~elem_size:4 in
  let g_dist = Program.alloc prog "dist" ~elems:n ~elem_size:4 in
  let g_bar = Program.alloc prog "barrier" ~elems:2 ~elem_size:4 in
  let _ =
    B.define prog "bfs" ~nparams:2 (fun b ->
        let pn = B.param b 0 and piters = B.param b 1 in
        B.for_ b ~from:(B.imm 0) ~to_:piters (fun it ->
            let lo, hi = U.spmd_slice b ~total:pn in
            B.for_ b ~from:lo ~to_:hi (fun u ->
                let du = B.load b ~size:4 (B.elem b g_dist u) in
                (* Only relax from nodes the search has reached. *)
                B.if_ b
                  (B.icmp b Op.Lt du (B.imm unreachable))
                  (fun () ->
                    let s = B.load b ~size:4 (B.elem b g_rp u) in
                    let e =
                      B.load b ~size:4 (B.elem b g_rp (B.add b u (B.imm 1)))
                    in
                    let cand = B.add b du (B.imm 1) in
                    B.for_ b ~from:s ~to_:e (fun k ->
                        let v = B.load b ~size:4 (B.elem b g_cols k) in
                        ignore
                          (B.atomic b Op.Rmw_min ~size:4
                             ~addr:(B.elem b g_dist v) cand))));
            U.barrier b ~state:g_bar ~target:(B.add b it (B.imm 1)));
        B.ret b ())
  in
  let expected =
    Array.map (fun d -> if d = max_int then unreachable else d) host
  in
  {
    Runner.name = "bfs";
    program = prog;
    kernel = "bfs";
    args = [ Value.of_int n; Value.of_int iters ];
    setup =
      (fun it ->
        U.write_ints it g_rp g.Datasets.row_ptr;
        U.write_ints it g_cols g.Datasets.cols;
        U.write_ints it g_dist (Array.make n unreachable);
        U.write_ints it g_bar [| 0; 0 |];
        Mosaic_trace.Interp.poke_global it g_dist 0 (Value.of_int 0));
    check =
      (fun it ->
        let got = U.read_ints it g_dist n in
        got = expected);
  }
