open Mosaic_ir
module B = Builder
module Interp = Mosaic_trace.Interp

let min_op b x y = B.select b (B.icmp b Op.Lt x y) x y

(* lo = tid * ceil(total / ntiles); hi = min total (lo + per). *)
let spmd_slice b ~total =
  let per =
    B.sdiv b (B.sub b (B.add b total B.ntiles) (B.imm 1)) B.ntiles
  in
  let lo = B.mul b B.tid per in
  let hi = min_op b total (B.add b lo per) in
  (lo, hi)

let barrier b ~state ~target =
  let arrivals = B.elem b state (B.imm 0) in
  let generation = B.elem b state (B.imm 1) in
  let old = B.atomic b Op.Rmw_add ~size:4 ~addr:arrivals (B.imm 1) in
  B.if_else b
    (B.icmp b Op.Eq old (B.sub b B.ntiles (B.imm 1)))
    (fun () ->
      B.store b ~size:4 ~addr:arrivals (B.imm 0);
      ignore (B.atomic b Op.Rmw_add ~size:4 ~addr:generation (B.imm 1)))
    (fun () ->
      B.while_ b
        ~cond:(fun () -> B.icmp b Op.Lt (B.load b ~size:4 generation) target)
        (fun () -> ()))

let approx_equal a b =
  let diff = Float.abs (a -. b) in
  diff <= 1e-6 +. (1e-5 *. Float.max (Float.abs a) (Float.abs b))

let read_floats it g n =
  Array.init n (fun i -> Value.to_float (Interp.peek_global it g i))

let write_floats it g arr =
  Array.iteri (fun i v -> Interp.poke_global it g i (Value.of_float v)) arr

let write_ints it g arr =
  Array.iteri (fun i v -> Interp.poke_global it g i (Value.of_int v)) arr

let read_ints it g n =
  Array.init n (fun i -> Value.to_int (Interp.peek_global it g i))
