(** Memory-system microbenchmarks.

    Three classic probes used to validate that the simulated memory system
    honours its configuration (the tests assert measured against
    configured):

    - [pointer_chase]: a dependent load chain through a random permutation —
      measures round-trip load latency (no MLP possible);
    - [stream]: independent streaming reads — measures sustainable
      bandwidth;
    - [random_access]: independent random reads — measures MLP-limited
      latency hiding. *)

val pointer_chase : ?seed:int -> nodes:int -> steps:int -> unit -> Runner.t

val stream : ?seed:int -> elems:int -> unit -> Runner.t

val random_access : ?seed:int -> elems:int -> accesses:int -> unit -> Runner.t
