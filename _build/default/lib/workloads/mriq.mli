(** Parboil MRI-Q: Q-matrix computation for non-Cartesian MRI
    reconstruction. For every voxel, accumulates magnitude-weighted
    sin/cos of the phase against all k-space samples — dominated by
    transcendental math calls (the benchmark where ISA-agnostic timing
    diverges most in Fig 5). SPMD over voxels. *)

val instance : ?seed:int -> voxels:int -> samples:int -> unit -> Runner.t
