(** Parboil TPACF: two-point angular correlation function. All-pairs dot
    products of unit vectors binned into an angular histogram via a linear
    scan of bin edges — mixed FP compute, branches and atomic histogram
    updates; the benchmark with the largest over-estimate in Fig 5. SPMD
    over points. *)

val instance : ?seed:int -> points:int -> bins:int -> unit -> Runner.t
