open Mosaic_ir
module B = Builder
module U = Kernel_util

let two_pi = 2.0 *. Float.pi

let instance ?(seed = 23) ~voxels ~samples () =
  let prog = Program.create () in
  let g_x = Program.alloc prog "vox_xyz" ~elems:(3 * voxels) ~elem_size:4 in
  let g_k = Program.alloc prog "k_xyz" ~elems:(3 * samples) ~elem_size:4 in
  let g_mag = Program.alloc prog "mag" ~elems:samples ~elem_size:4 in
  let g_qr = Program.alloc prog "q_re" ~elems:voxels ~elem_size:4 in
  let g_qi = Program.alloc prog "q_im" ~elems:voxels ~elem_size:4 in
  let _ =
    B.define prog "mri-q" ~nparams:2 (fun b ->
        let nvox = B.param b 0 and nsamp = B.param b 1 in
        let lo, hi = U.spmd_slice b ~total:nvox in
        B.for_ b ~from:lo ~to_:hi (fun v ->
            let vbase = B.mul b v (B.imm 3) in
            let x = B.load b ~size:4 (B.elem b g_x vbase) in
            let y = B.load b ~size:4 (B.elem b g_x (B.add b vbase (B.imm 1))) in
            let z = B.load b ~size:4 (B.elem b g_x (B.add b vbase (B.imm 2))) in
            let qr = B.var b (B.fimm 0.0) in
            let qi = B.var b (B.fimm 0.0) in
            B.for_ b ~from:(B.imm 0) ~to_:nsamp (fun s ->
                let sbase = B.mul b s (B.imm 3) in
                let kx = B.load b ~size:4 (B.elem b g_k sbase) in
                let ky =
                  B.load b ~size:4 (B.elem b g_k (B.add b sbase (B.imm 1)))
                in
                let kz =
                  B.load b ~size:4 (B.elem b g_k (B.add b sbase (B.imm 2)))
                in
                let m = B.load b ~size:4 (B.elem b g_mag s) in
                let dot =
                  B.fadd b
                    (B.fadd b (B.fmul b kx x) (B.fmul b ky y))
                    (B.fmul b kz z)
                in
                let phi = B.fmul b (B.fimm two_pi) dot in
                B.assign b ~var:qr
                  (B.fadd b qr (B.fmul b m (B.math1 b Op.Cos phi)));
                B.assign b ~var:qi
                  (B.fadd b qi (B.fmul b m (B.math1 b Op.Sin phi))));
            B.store b ~size:4 ~addr:(B.elem b g_qr v) qr;
            B.store b ~size:4 ~addr:(B.elem b g_qi v) qi);
        B.ret b ())
  in
  let vx = Datasets.random_points ~seed voxels in
  let kx = Datasets.random_points ~seed:(seed + 1) samples in
  let mag = Datasets.random_floats ~seed:(seed + 2) samples in
  let exp_r = Array.make voxels 0.0 and exp_i = Array.make voxels 0.0 in
  for v = 0 to voxels - 1 do
    for s = 0 to samples - 1 do
      let dot =
        (kx.(3 * s) *. vx.(3 * v))
        +. (kx.((3 * s) + 1) *. vx.((3 * v) + 1))
        +. (kx.((3 * s) + 2) *. vx.((3 * v) + 2))
      in
      let phi = two_pi *. dot in
      exp_r.(v) <- exp_r.(v) +. (mag.(s) *. cos phi);
      exp_i.(v) <- exp_i.(v) +. (mag.(s) *. sin phi)
    done
  done;
  {
    Runner.name = "mri-q";
    program = prog;
    kernel = "mri-q";
    args = [ Value.of_int voxels; Value.of_int samples ];
    setup =
      (fun it ->
        U.write_floats it g_x vx;
        U.write_floats it g_k kx;
        U.write_floats it g_mag mag);
    check =
      (fun it ->
        Array.for_all2 U.approx_equal (U.read_floats it g_qr voxels) exp_r
        && Array.for_all2 U.approx_equal (U.read_floats it g_qi voxels) exp_i);
  }
