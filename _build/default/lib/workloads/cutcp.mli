(** Parboil CUTCP: cutoff-limited Coulombic potential. Each 3D grid point
    accumulates q/r from all atoms within a cutoff radius — FP compute with
    a data-dependent branch per atom. SPMD over grid points. *)

val instance :
  ?seed:int -> grid_points:int -> atoms:int -> cutoff:float -> unit -> Runner.t
