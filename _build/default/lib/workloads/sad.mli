(** Parboil SAD: sum-of-absolute-differences for motion estimation. For
    each macroblock of the current frame, computes the SAD against the
    reference frame at every search offset. Integer-dense with high ILP —
    the highest-IPC benchmark of Fig 6. SPMD over macroblocks. *)

val instance :
  ?seed:int -> blocks:int -> block_size:int -> offsets:int -> unit -> Runner.t
