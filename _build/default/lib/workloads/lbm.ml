open Mosaic_ir
module B = Builder
module U = Kernel_util

let omega = 1.2

(* D2Q5: center, east, north, west, south. *)
let wq = [| 1.0 /. 3.0; 1.0 /. 6.0; 1.0 /. 6.0; 1.0 /. 6.0; 1.0 /. 6.0 |]

let ex = [| 0.0; 1.0; 0.0; -1.0; 0.0 |]

let ey = [| 0.0; 0.0; -1.0; 0.0; 1.0 |]

(* Cell offset the direction streams to, in units of the flattened index. *)
let stream_offset w = [| 0; 1; -w; -1; w |]

let host_step ~h ~w fin =
  let cells = h * w in
  let fout = Array.copy fin in
  for i = 1 to h - 2 do
    for j = 1 to w - 2 do
      let idx = (i * w) + j in
      let f = Array.init 5 (fun d -> fin.((d * cells) + idx)) in
      let rho = Array.fold_left ( +. ) 0.0 f in
      let ux = (f.(1) -. f.(3)) /. rho in
      let uy = (f.(4) -. f.(2)) /. rho in
      for d = 0 to 4 do
        let feq =
          wq.(d) *. rho *. (1.0 +. (3.0 *. ((ex.(d) *. ux) +. (ey.(d) *. uy))))
        in
        let fnew = f.(d) +. (omega *. (feq -. f.(d))) in
        fout.((d * cells) + idx + (stream_offset w).(d)) <- fnew
      done
    done
  done;
  fout

let instance ?(seed = 13) ~h ~w () =
  if h < 3 || w < 3 then invalid_arg "Lbm.instance: grid too small";
  let cells = h * w in
  let prog = Program.create () in
  let g_fin = Program.alloc prog "fin" ~elems:(5 * cells) ~elem_size:4 in
  let g_fout = Program.alloc prog "fout" ~elems:(5 * cells) ~elem_size:4 in
  let _ =
    B.define prog "lbm" ~nparams:2 (fun b ->
        let ph = B.param b 0 and pw = B.param b 1 in
        let ncells = B.mul b ph pw in
        let interior = B.sub b ph (B.imm 2) in
        let lo, hi = U.spmd_slice b ~total:interior in
        B.for_ b ~from:lo ~to_:hi (fun r ->
            let i = B.add b r (B.imm 1) in
            B.for_ b ~from:(B.imm 1) ~to_:(B.sub b pw (B.imm 1)) (fun j ->
                let idx = B.add b (B.mul b i pw) j in
                let load_dist d =
                  B.load b ~size:4
                    (B.elem b g_fin
                       (B.add b (B.mul b (B.imm d) ncells) idx))
                in
                let f = Array.init 5 load_dist in
                let rho =
                  B.fadd b
                    (B.fadd b (B.fadd b f.(0) f.(1)) (B.fadd b f.(2) f.(3)))
                    f.(4)
                in
                let ux = B.fdiv b (B.fsub b f.(1) f.(3)) rho in
                let uy = B.fdiv b (B.fsub b f.(4) f.(2)) rho in
                for d = 0 to 4 do
                  let eu =
                    B.fadd b
                      (B.fmul b (B.fimm ex.(d)) ux)
                      (B.fmul b (B.fimm ey.(d)) uy)
                  in
                  let feq =
                    B.fmul b
                      (B.fmul b (B.fimm wq.(d)) rho)
                      (B.fadd b (B.fimm 1.0) (B.fmul b (B.fimm 3.0) eu))
                  in
                  let fnew =
                    B.fadd b f.(d)
                      (B.fmul b (B.fimm omega) (B.fsub b feq f.(d)))
                  in
                  let dst_idx =
                    B.add b
                      (B.add b (B.mul b (B.imm d) ncells) idx)
                      (B.imm (stream_offset w).(d))
                  in
                  B.store b ~size:4 ~addr:(B.elem b g_fout dst_idx) fnew
                done));
        B.ret b ())
  in
  let fin =
    Array.map (fun v -> 0.5 +. v) (Datasets.random_floats ~seed (5 * cells))
  in
  let expected = host_step ~h ~w fin in
  {
    Runner.name = "lbm";
    program = prog;
    kernel = "lbm";
    args = [ Value.of_int h; Value.of_int w ];
    setup =
      (fun it ->
        U.write_floats it g_fin fin;
        U.write_floats it g_fout fin);
    check =
      (fun it ->
        let got = U.read_floats it g_fout (5 * cells) in
        let ok = ref true in
        for d = 0 to 4 do
          for i = 1 to h - 2 do
            for j = 1 to w - 2 do
              let idx = (d * cells) + (i * w) + j in
              if not (U.approx_equal got.(idx) expected.(idx)) then ok := false
            done
          done
        done;
        !ok);
  }
