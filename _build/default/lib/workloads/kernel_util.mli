(** Shared lowering helpers for workload kernels. *)

open Mosaic_ir

(** [min_op b x y] emits a select-based minimum. *)
val min_op : Builder.t -> Instr.operand -> Instr.operand -> Instr.operand

(** [spmd_slice b ~total] computes this tile's contiguous slice
    [\[lo, hi)] of [total] work items: block partitioning by tile id. *)
val spmd_slice :
  Builder.t -> total:Instr.operand -> Instr.operand * Instr.operand

(** [barrier b ~state ~target] emits a spin barrier across all tiles:
    [state] is a 2-element int32 global (arrival counter, generation); the
    last tile to arrive resets the counter and bumps the generation, the
    rest spin until the generation reaches [target] (the number of barriers
    every tile has executed so far, including this one). *)
val barrier :
  Builder.t -> state:Program.global -> target:Instr.operand -> unit

(** [approx_equal a b] with mixed absolute/relative tolerance. *)
val approx_equal : float -> float -> bool

(** Read back [n] floats from a global array. *)
val read_floats :
  Mosaic_trace.Interp.t -> Program.global -> int -> float array

(** Write floats into a global array. *)
val write_floats :
  Mosaic_trace.Interp.t -> Program.global -> float array -> unit

val write_ints : Mosaic_trace.Interp.t -> Program.global -> int array -> unit

val read_ints : Mosaic_trace.Interp.t -> Program.global -> int -> int array
