open Mosaic_ir
module B = Builder
module U = Kernel_util

let normalize points n =
  for i = 0 to n - 1 do
    let x = points.(3 * i) -. 0.5
    and y = points.((3 * i) + 1) -. 0.5
    and z = points.((3 * i) + 2) -. 0.5 in
    let r = sqrt ((x *. x) +. (y *. y) +. (z *. z)) in
    let r = if r < 1e-9 then 1.0 else r in
    points.(3 * i) <- x /. r;
    points.((3 * i) + 1) <- y /. r;
    points.((3 * i) + 2) <- z /. r
  done

let edges_of bins = Array.init bins (fun i -> -1.0 +. (2.0 *. float_of_int (i + 1) /. float_of_int bins))

let instance ?(seed = 31) ~points:npts ~bins () =
  let prog = Program.create () in
  let g_p = Program.alloc prog "pts" ~elems:(3 * npts) ~elem_size:4 in
  let g_edges = Program.alloc prog "edges" ~elems:bins ~elem_size:4 in
  let g_hist = Program.alloc prog "hist" ~elems:(bins + 1) ~elem_size:4 in
  let _ =
    B.define prog "tpacf" ~nparams:2 (fun b ->
        let n = B.param b 0 and nbins = B.param b 1 in
        let lo, hi = U.spmd_slice b ~total:n in
        B.for_ b ~from:lo ~to_:hi (fun i ->
            let ib = B.mul b i (B.imm 3) in
            let xi = B.load b ~size:4 (B.elem b g_p ib) in
            let yi = B.load b ~size:4 (B.elem b g_p (B.add b ib (B.imm 1))) in
            let zi = B.load b ~size:4 (B.elem b g_p (B.add b ib (B.imm 2))) in
            B.for_ b ~from:(B.add b i (B.imm 1)) ~to_:n (fun j ->
                let jb = B.mul b j (B.imm 3) in
                let xj = B.load b ~size:4 (B.elem b g_p jb) in
                let yj =
                  B.load b ~size:4 (B.elem b g_p (B.add b jb (B.imm 1)))
                in
                let zj =
                  B.load b ~size:4 (B.elem b g_p (B.add b jb (B.imm 2)))
                in
                let dot =
                  B.fadd b
                    (B.fadd b (B.fmul b xi xj) (B.fmul b yi yj))
                    (B.fmul b zi zj)
                in
                (* Linear scan over bin edges, as Parboil does over its
                   precomputed bin boundaries. *)
                let bin = B.var b (B.imm 0) in
                B.for_ b ~from:(B.imm 0) ~to_:nbins (fun e ->
                    let edge = B.load b ~size:4 (B.elem b g_edges e) in
                    let above = B.fcmp b Op.Ge dot edge in
                    B.assign b ~var:bin (B.add b bin (B.select b above (B.imm 1) (B.imm 0))));
                ignore
                  (B.atomic b Op.Rmw_add ~size:4 ~addr:(B.elem b g_hist bin)
                     (B.imm 1))));
        B.ret b ())
  in
  let pts = Datasets.random_points ~seed npts in
  normalize pts npts;
  let edges = edges_of bins in
  let expected = Array.make (bins + 1) 0 in
  for i = 0 to npts - 1 do
    for j = i + 1 to npts - 1 do
      let dot =
        (pts.(3 * i) *. pts.(3 * j))
        +. (pts.((3 * i) + 1) *. pts.((3 * j) + 1))
        +. (pts.((3 * i) + 2) *. pts.((3 * j) + 2))
      in
      let bin = ref 0 in
      Array.iter (fun e -> if dot >= e then incr bin) edges;
      expected.(!bin) <- expected.(!bin) + 1
    done
  done;
  {
    Runner.name = "tpacf";
    program = prog;
    kernel = "tpacf";
    args = [ Value.of_int npts; Value.of_int bins ];
    setup =
      (fun it ->
        U.write_floats it g_p pts;
        U.write_floats it g_edges edges);
    check =
      (fun it ->
        let got = U.read_ints it g_hist (bins + 1) in
        got = expected);
  }
