(** Textual IR parser — the assembler counterpart of {!Pretty}.

    Accepts exactly the surface syntax the pretty-printer emits (instruction
    id brackets are ignored), so programs round-trip:

    {v
    global @data : 16 x 4B at 0x1000
    kernel @saxpy(params=1, regs=6) {
    bb0:
      [  0] %r1 = gep.4 @data %r0
      [  1] %r2 = load.4 %r1
      [  2] %r3 = fmul %r2 2
      [  3] store.4 %r1 %r3
      [  4] ret
    }
    v}

    Useful for writing kernels as text, for golden tests, and for shipping
    reproducible kernels without OCaml code. *)

exception Parse_error of { line : int; message : string }

(** Parse a whole program (globals and kernels). Global base addresses in
    the input are ignored; globals are re-allocated in order of
    appearance. The result is validated; [Parse_error] is raised on
    syntactic problems, [Invalid_argument] on validation failures. *)
val program : string -> Program.t

(** Parse a single kernel body given an existing program (for resolving
    globals). The function is registered in [prog]. *)
val kernel : Program.t -> string -> Func.t
