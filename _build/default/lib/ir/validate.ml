type error = { where : string; what : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.what

let math_arity = function
  | Op.Pow | Op.Atan2 -> 2
  | Op.Sqrt | Op.Sin | Op.Cos | Op.Exp | Op.Log | Op.Fabs | Op.Floor -> 1

(* Expected operand count; None means any arity is accepted. *)
let arity = function
  | Op.Binop _ | Op.Fbinop _ | Op.Icmp _ | Op.Fcmp _ -> Some 2
  | Op.Select -> Some 3
  | Op.Cast _ -> Some 1
  | Op.Math m -> Some (math_arity m)
  | Op.Gep _ -> Some 2
  | Op.Load _ -> Some 1
  | Op.Store _ -> Some 2
  | Op.Atomic_rmw _ -> Some 2
  | Op.Send _ -> Some 2
  | Op.Load_send _ -> Some 2
  | Op.Recv _ -> Some 0
  | Op.Store_recv _ -> Some 1
  | Op.Accel _ -> None
  | Op.Br _ -> Some 0
  | Op.Cond_br _ -> Some 1
  | Op.Ret -> None

let check_func (f : Func.t) =
  let errors = ref [] in
  let err where fmt =
    Format.kasprintf (fun what -> errors := { where; what } :: !errors) fmt
  in
  let nblocks = Array.length f.Func.blocks in
  if nblocks = 0 then err f.Func.name "function has no blocks";
  (* Which registers are written anywhere (params count as written). *)
  let written = Array.make (Stdlib.max f.Func.nregs 1) false in
  for i = 0 to f.Func.nparams - 1 do
    if i < f.Func.nregs then written.(i) <- true
  done;
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (fun (i : Instr.t) ->
          match i.Instr.dst with
          | Some d when d >= 0 && d < f.Func.nregs -> written.(d) <- true
          | Some _ | None -> ())
        b.Func.instrs)
    f.Func.blocks;
  let seen_ids = Hashtbl.create 64 in
  Array.iteri
    (fun bi (b : Func.block) ->
      let where = Printf.sprintf "%s/bb%d" f.Func.name bi in
      if b.Func.bid <> bi then
        err where "block id %d does not match its index %d" b.Func.bid bi;
      let n = Array.length b.Func.instrs in
      if n = 0 then err where "empty block"
      else begin
        Array.iteri
          (fun k (i : Instr.t) ->
            let iw = Printf.sprintf "%s[%d]" where k in
            if Hashtbl.mem seen_ids i.Instr.id then
              err iw "duplicate instruction id %d" i.Instr.id
            else Hashtbl.replace seen_ids i.Instr.id ();
            if i.Instr.id < 0 || i.Instr.id >= f.Func.ninstrs then
              err iw "instruction id %d out of range" i.Instr.id;
            (match arity i.Instr.op with
            | Some a when Array.length i.Instr.args <> a ->
                err iw "%a expects %d operands, got %d" (fun ppf -> Op.pp ppf)
                  i.Instr.op a (Array.length i.Instr.args)
            | Some _ | None -> ());
            (match (Op.has_result i.Instr.op, i.Instr.dst) with
            | true, None -> err iw "missing destination register"
            | false, Some _ -> err iw "unexpected destination register"
            | true, Some d when d < 0 || d >= f.Func.nregs ->
                err iw "destination register %d out of range" d
            | _ -> ());
            (match Op.mem_size i.Instr.op with
            | Some (1 | 2 | 4 | 8) | None -> ()
            | Some s -> err iw "unsupported access size %d" s);
            (match i.Instr.op with
            | Op.Ret when Array.length i.Instr.args > 1 ->
                err iw "ret takes at most one operand"
            | Op.Br t ->
                if t < 0 || t >= nblocks then err iw "branch target bb%d" t
            | Op.Cond_br (t, e) ->
                if t < 0 || t >= nblocks then err iw "branch target bb%d" t;
                if e < 0 || e >= nblocks then err iw "branch target bb%d" e
            | _ -> ());
            Array.iter
              (fun operand ->
                match operand with
                | Instr.Reg r ->
                    if r < 0 || r >= f.Func.nregs then
                      err iw "register %%r%d out of range" r
                    else if not written.(r) then
                      err iw "register %%r%d is never written" r
                | Instr.Imm _ | Instr.Glob _ | Instr.Tid | Instr.Ntiles -> ())
              i.Instr.args;
            let is_last = k = n - 1 in
            let is_term = Op.is_terminator i.Instr.op in
            if is_last && not is_term then err iw "block not terminated";
            if (not is_last) && is_term then err iw "terminator mid-block")
          b.Func.instrs
      end)
    f.Func.blocks;
  List.rev !errors

let check_program p =
  let func_errors = List.concat_map check_func (Program.funcs p) in
  let glob_errors =
    List.concat_map
      (fun (f : Func.t) ->
        Array.to_list f.Func.blocks
        |> List.concat_map (fun (b : Func.block) ->
               Array.to_list b.Func.instrs
               |> List.concat_map (fun (i : Instr.t) ->
                      Array.to_list i.Instr.args
                      |> List.filter_map (fun operand ->
                             match operand with
                             | Instr.Glob g
                               when Program.find_global p g = None ->
                                 Some
                                   {
                                     where =
                                       Printf.sprintf "%s[%d]" f.Func.name
                                         i.Instr.id;
                                     what =
                                       Printf.sprintf
                                         "unresolved global @%s" g;
                                   }
                             | _ -> None))))
      (Program.funcs p)
  in
  func_errors @ glob_errors

let check_exn p =
  match check_program p with
  | [] -> ()
  | errs ->
      let msg =
        String.concat "\n"
          (List.map (fun e -> Format.asprintf "%a" pp_error e) errs)
      in
      invalid_arg ("Validate.check_exn:\n" ^ msg)
