(** A program: kernels plus a global data segment.

    Globals model the arrays a kernel operates on. Addresses are bytes; the
    allocator packs globals sequentially with cache-line alignment so that
    distinct arrays never share a line (matching separate allocations on a
    real machine). *)

type global = {
  gname : string;
  base : int;  (** base byte address *)
  elems : int;  (** number of elements *)
  elem_size : int;  (** bytes per element (4 or 8) *)
}

type t

val create : unit -> t

(** [add_func p f] registers a kernel; raises [Invalid_argument] on a
    duplicate name. *)
val add_func : t -> Func.t -> unit

val find_func : t -> string -> Func.t option

val func_exn : t -> string -> Func.t

val funcs : t -> Func.t list

(** [alloc p name ~elems ~elem_size] reserves a global array and returns it.
    Raises [Invalid_argument] on duplicate name or non-positive size. *)
val alloc : t -> string -> elems:int -> elem_size:int -> global

val find_global : t -> string -> global option

val global_exn : t -> string -> global

val globals : t -> global list

(** Total bytes of global data (for footprint reporting). *)
val data_bytes : t -> int

(** Address one past the last allocated byte. *)
val heap_end : t -> int
