let ibinop op x y =
  let open Int64 in
  match op with
  | Op.Add -> add x y
  | Op.Sub -> sub x y
  | Op.Mul -> mul x y
  | Op.Sdiv -> if y = 0L then 0L else div x y
  | Op.Srem -> if y = 0L then 0L else rem x y
  | Op.And -> logand x y
  | Op.Or -> logor x y
  | Op.Xor -> logxor x y
  | Op.Shl -> shift_left x (to_int y land 63)
  | Op.Lshr -> shift_right_logical x (to_int y land 63)
  | Op.Ashr -> shift_right x (to_int y land 63)

let fbinop op x y =
  match op with
  | Op.Fadd -> x +. y
  | Op.Fsub -> x -. y
  | Op.Fmul -> x *. y
  | Op.Fdiv -> x /. y

let pred_int pred x y =
  match pred with
  | Op.Eq -> Int64.equal x y
  | Op.Ne -> not (Int64.equal x y)
  | Op.Lt -> Int64.compare x y < 0
  | Op.Le -> Int64.compare x y <= 0
  | Op.Gt -> Int64.compare x y > 0
  | Op.Ge -> Int64.compare x y >= 0

let pred_float pred x y =
  match pred with
  | Op.Eq -> x = y
  | Op.Ne -> x <> y
  | Op.Lt -> x < y
  | Op.Le -> x <= y
  | Op.Gt -> x > y
  | Op.Ge -> x >= y

let math m args =
  match (m, args) with
  | Op.Sqrt, [| x |] -> sqrt x
  | Op.Sin, [| x |] -> sin x
  | Op.Cos, [| x |] -> cos x
  | Op.Exp, [| x |] -> exp x
  | Op.Log, [| x |] -> log x
  | Op.Fabs, [| x |] -> Float.abs x
  | Op.Floor, [| x |] -> Float.floor x
  | Op.Pow, [| x; y |] -> Float.pow x y
  | Op.Atan2, [| x; y |] -> Float.atan2 x y
  | _ -> invalid_arg "Eval.math: arity mismatch"

let rmw r old v =
  match (old, r) with
  | Value.Float a, Op.Rmw_add -> Value.Float (a +. Value.to_float v)
  | Value.Float a, Op.Rmw_min -> Value.Float (Float.min a (Value.to_float v))
  | Value.Float a, Op.Rmw_max -> Value.Float (Float.max a (Value.to_float v))
  | _, Op.Rmw_add -> Value.Int (Int64.add (Value.to_int64 old) (Value.to_int64 v))
  | _, Op.Rmw_min ->
      let a = Value.to_int64 old and b = Value.to_int64 v in
      Value.Int (if Int64.compare a b <= 0 then a else b)
  | _, Op.Rmw_max ->
      let a = Value.to_int64 old and b = Value.to_int64 v in
      Value.Int (if Int64.compare a b >= 0 then a else b)
  | _, Op.Rmw_xchg -> v

let cast c v =
  match c with
  | Op.Sitofp -> Value.Float (Value.to_float v)
  | Op.Fptosi -> Value.Int (Int64.of_float (Value.to_float v))
  | Op.Zext -> Value.Int (Value.to_int64 v)
  | Op.Trunc -> Value.Int (Int64.of_int32 (Int64.to_int32 (Value.to_int64 v)))
