type block = { bid : int; instrs : Instr.t array }

type t = {
  name : string;
  nparams : int;
  nregs : int;
  blocks : block array;
  ninstrs : int;
  index : (Instr.t * int) array;
}

let block f bid =
  if bid < 0 || bid >= Array.length f.blocks then
    invalid_arg (Printf.sprintf "Func.block: bad block id %d in %s" bid f.name);
  f.blocks.(bid)

let terminator b =
  let n = Array.length b.instrs in
  if n = 0 then invalid_arg "Func.terminator: empty block";
  b.instrs.(n - 1)

let lookup f id =
  if id < 0 || id >= Array.length f.index then
    invalid_arg (Printf.sprintf "Func.instr: bad id %d in %s" id f.name);
  f.index.(id)

let instr f ~id = fst (lookup f id)

let block_of_instr f ~id = snd (lookup f id)

let successors b =
  match (terminator b).Instr.op with
  | Op.Br t -> [ t ]
  | Op.Cond_br (t, e) -> [ t; e ]
  | Op.Ret -> []
  | _ -> invalid_arg "Func.successors: block not terminated"

let make ~name ~nparams ~nregs ~blocks =
  let ninstrs =
    Array.fold_left (fun acc b -> acc + Array.length b.instrs) 0 blocks
  in
  let index =
    Array.make (Stdlib.max ninstrs 1)
      (Instr.make ~id:0 ~op:Op.Ret ~args:[||] ~dst:None, 0)
  in
  Array.iter
    (fun b -> Array.iter (fun i -> index.(i.Instr.id) <- (i, b.bid)) b.instrs)
    blocks;
  { name; nparams; nregs; blocks; ninstrs; index }
