(** Textual dump of IR functions and programs, LLVM-assembly flavoured.
    Used by the CLI's [dump] command and by tests to pin lowering. *)

val pp_block : Format.formatter -> Func.block -> unit
val pp_func : Format.formatter -> Func.t -> unit
val pp_program : Format.formatter -> Program.t -> unit
val func_to_string : Func.t -> string
