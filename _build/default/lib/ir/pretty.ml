let pp_block ppf (b : Func.block) =
  Format.fprintf ppf "bb%d:@." b.Func.bid;
  Array.iter
    (fun i -> Format.fprintf ppf "  [%3d] %a@." i.Instr.id Instr.pp i)
    b.Func.instrs

let pp_func ppf (f : Func.t) =
  Format.fprintf ppf "kernel @%s(params=%d, regs=%d) {@." f.Func.name
    f.Func.nparams f.Func.nregs;
  Array.iter (pp_block ppf) f.Func.blocks;
  Format.fprintf ppf "}@."

let pp_program ppf p =
  List.iter
    (fun (g : Program.global) ->
      Format.fprintf ppf "global @%s : %d x %dB at 0x%x@." g.Program.gname
        g.Program.elems g.Program.elem_size g.Program.base)
    (Program.globals p);
  List.iter (pp_func ppf) (Program.funcs p)

let func_to_string f = Format.asprintf "%a" pp_func f
