type ibinop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Srem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type pred = Eq | Ne | Lt | Le | Gt | Ge

type cast = Sitofp | Fptosi | Zext | Trunc

type math = Sqrt | Sin | Cos | Exp | Log | Fabs | Floor | Pow | Atan2

type rmw = Rmw_add | Rmw_min | Rmw_max | Rmw_xchg

type t =
  | Binop of ibinop
  | Fbinop of fbinop
  | Icmp of pred
  | Fcmp of pred
  | Select
  | Cast of cast
  | Math of math
  | Gep of int
  | Load of int
  | Store of int
  | Atomic_rmw of rmw * int
  | Send of int
  | Load_send of int * int
  | Recv of int
  | Store_recv of int * int * rmw option
  | Accel of string
  | Br of int
  | Cond_br of int * int
  | Ret

type op_class =
  | C_ialu
  | C_imul
  | C_idiv
  | C_falu
  | C_fmul
  | C_fdiv
  | C_fmath
  | C_agu
  | C_load
  | C_store
  | C_atomic
  | C_branch
  | C_send
  | C_recv
  | C_accel

let classify = function
  | Binop (Add | Sub | And | Or | Xor | Shl | Lshr | Ashr) -> C_ialu
  | Binop Mul -> C_imul
  | Binop (Sdiv | Srem) -> C_idiv
  | Fbinop (Fadd | Fsub) -> C_falu
  | Fbinop Fmul -> C_fmul
  | Fbinop Fdiv -> C_fdiv
  | Icmp _ | Fcmp _ | Select | Cast _ -> C_ialu
  | Math _ -> C_fmath
  | Gep _ -> C_agu
  | Load _ | Load_send _ -> C_load
  | Store _ | Store_recv (_, _, None) -> C_store
  | Atomic_rmw _ | Store_recv (_, _, Some _) -> C_atomic
  | Send _ -> C_send
  | Recv _ -> C_recv
  | Accel _ -> C_accel
  | Br _ | Cond_br _ | Ret -> C_branch

let is_terminator = function Br _ | Cond_br _ | Ret -> true | _ -> false

let is_mem = function
  | Load _ | Store _ | Atomic_rmw _ | Load_send _ | Store_recv _ -> true
  | _ -> false

let is_dynamic_cost = function
  | Load _ | Store _ | Atomic_rmw _ | Load_send _ | Store_recv _ | Send _
  | Recv _ | Accel _ ->
      true
  | _ -> false

let mem_size = function
  | Load s | Store s | Atomic_rmw (_, s) | Load_send (_, s)
  | Store_recv (_, s, _) ->
      Some s
  | _ -> None

let has_result = function
  | Store _ | Send _ | Load_send _ | Store_recv _ | Br _ | Cond_br _ | Ret ->
      false
  | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Select | Cast _ | Math _ | Gep _
  | Load _ | Atomic_rmw _ | Recv _ ->
      true
  | Accel _ -> false

let ibinop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Srem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"

let fbinop_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let pred_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let math_name = function
  | Sqrt -> "sqrt"
  | Sin -> "sin"
  | Cos -> "cos"
  | Exp -> "exp"
  | Log -> "log"
  | Fabs -> "fabs"
  | Floor -> "floor"
  | Pow -> "pow"
  | Atan2 -> "atan2"

let rmw_name = function
  | Rmw_add -> "add"
  | Rmw_min -> "min"
  | Rmw_max -> "max"
  | Rmw_xchg -> "xchg"

let cast_name = function
  | Sitofp -> "sitofp"
  | Fptosi -> "fptosi"
  | Zext -> "zext"
  | Trunc -> "trunc"

let pp ppf = function
  | Binop b -> Format.pp_print_string ppf (ibinop_name b)
  | Fbinop b -> Format.pp_print_string ppf (fbinop_name b)
  | Icmp p -> Format.fprintf ppf "icmp.%s" (pred_name p)
  | Fcmp p -> Format.fprintf ppf "fcmp.%s" (pred_name p)
  | Select -> Format.pp_print_string ppf "select"
  | Cast c -> Format.pp_print_string ppf (cast_name c)
  | Math m -> Format.fprintf ppf "call.%s" (math_name m)
  | Gep scale -> Format.fprintf ppf "gep.%d" scale
  | Load s -> Format.fprintf ppf "load.%d" s
  | Store s -> Format.fprintf ppf "store.%d" s
  | Atomic_rmw (r, s) -> Format.fprintf ppf "atomicrmw.%s.%d" (rmw_name r) s
  | Send c -> Format.fprintf ppf "send.%d" c
  | Load_send (c, s) -> Format.fprintf ppf "loadsend.%d.%d" c s
  | Recv c -> Format.fprintf ppf "recv.%d" c
  | Store_recv (c, s, None) -> Format.fprintf ppf "storerecv.%d.%d" c s
  | Store_recv (c, s, Some r) ->
      Format.fprintf ppf "storerecv.%s.%d.%d" (rmw_name r) c s
  | Accel k -> Format.fprintf ppf "accel.%s" k
  | Br b -> Format.fprintf ppf "br bb%d" b
  | Cond_br (t, f) -> Format.fprintf ppf "condbr bb%d bb%d" t f
  | Ret -> Format.pp_print_string ppf "ret"

let class_to_string = function
  | C_ialu -> "ialu"
  | C_imul -> "imul"
  | C_idiv -> "idiv"
  | C_falu -> "falu"
  | C_fmul -> "fmul"
  | C_fdiv -> "fdiv"
  | C_fmath -> "fmath"
  | C_agu -> "agu"
  | C_load -> "load"
  | C_store -> "store"
  | C_atomic -> "atomic"
  | C_branch -> "branch"
  | C_send -> "send"
  | C_recv -> "recv"
  | C_accel -> "accel"

let pp_class ppf c = Format.pp_print_string ppf (class_to_string c)

let all_classes =
  [
    C_ialu;
    C_imul;
    C_idiv;
    C_falu;
    C_fmul;
    C_fdiv;
    C_fmath;
    C_agu;
    C_load;
    C_store;
    C_atomic;
    C_branch;
    C_send;
    C_recv;
    C_accel;
  ]
