(** Pure evaluation of IR operators, shared by the trace interpreter and the
    compiler's constant folder. *)

val ibinop : Op.ibinop -> int64 -> int64 -> int64
val fbinop : Op.fbinop -> float -> float -> float
val pred_int : Op.pred -> int64 -> int64 -> bool
val pred_float : Op.pred -> float -> float -> bool

(** [math m args]; raises [Invalid_argument] on arity mismatch. *)
val math : Op.math -> float array -> float

(** [rmw r old v] is the new memory value of an atomic read-modify-write;
    float-typed locations get float semantics. *)
val rmw : Op.rmw -> Value.t -> Value.t -> Value.t

val cast : Op.cast -> Value.t -> Value.t
