lib/ir/validate.ml: Array Format Func Hashtbl Instr List Op Printf Program Stdlib String
