lib/ir/builder.mli: Func Instr Op Program
