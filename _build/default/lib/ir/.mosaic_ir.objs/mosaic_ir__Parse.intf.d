lib/ir/parse.mli: Func Program
