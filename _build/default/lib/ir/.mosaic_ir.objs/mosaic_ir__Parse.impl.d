lib/ir/parse.ml: Array Buffer Format Func Instr Int64 List Op Printf Program String Validate Value
