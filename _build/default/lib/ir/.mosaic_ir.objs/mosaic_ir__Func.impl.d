lib/ir/func.ml: Array Instr Op Printf Stdlib
