lib/ir/pretty.ml: Array Format Func Instr List Program
