lib/ir/eval.ml: Float Int64 Op Value
