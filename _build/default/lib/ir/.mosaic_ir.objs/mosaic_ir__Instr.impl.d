lib/ir/instr.ml: Array Format List Op String Value
