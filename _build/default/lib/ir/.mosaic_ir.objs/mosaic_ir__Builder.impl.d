lib/ir/builder.ml: Array Func Instr List Op Printf Program Value
