lib/ir/program.ml: Func Hashtbl List Printf
