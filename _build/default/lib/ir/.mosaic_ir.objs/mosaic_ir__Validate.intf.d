lib/ir/validate.mli: Format Func Program
