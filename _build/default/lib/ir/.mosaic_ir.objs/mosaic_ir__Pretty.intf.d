lib/ir/pretty.mli: Format Func Program
