lib/ir/eval.mli: Op Value
