lib/ir/program.mli: Func
