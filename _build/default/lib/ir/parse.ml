exception Parse_error of { line : int; message : string }

let fail ~line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let is_space c = c = ' ' || c = '\t' || c = '\r'

(* Tokenize one line: words separated by spaces; '(' ')' ',' ':' are
   separators too so headers split cleanly. *)
let tokens line =
  let n = String.length line in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = line.[i] in
    if is_space c || c = '(' || c = ')' || c = ',' then flush ()
    else Buffer.add_char buf c
  done;
  flush ();
  List.rev !out

let strip_brackets toks =
  (* Drop the "[  12]" id prefix the printer emits: one token "[12]" or two
     tokens "[" "12]" depending on padding. *)
  match toks with
  | t :: rest when String.length t > 0 && t.[0] = '[' ->
      if String.length t > 1 && t.[String.length t - 1] = ']' then rest
      else begin
        match rest with
        | t2 :: rest2
          when String.length t2 > 0 && t2.[String.length t2 - 1] = ']' ->
            rest2
        | _ -> toks
      end
  | _ -> toks

let split_on_char_nonempty c s =
  List.filter (fun x -> x <> "") (String.split_on_char c s)

let parse_operand ~line tok =
  if tok = "%tid" then Instr.Tid
  else if tok = "%ntiles" then Instr.Ntiles
  else if tok = "true" then Instr.Imm (Value.of_bool true)
  else if tok = "false" then Instr.Imm (Value.of_bool false)
  else if String.length tok > 2 && tok.[0] = '%' && tok.[1] = 'r' then
    match int_of_string_opt (String.sub tok 2 (String.length tok - 2)) with
    | Some r -> Instr.Reg r
    | None -> fail ~line "bad register %s" tok
  else if String.length tok > 1 && tok.[0] = '@' then
    Instr.Glob (String.sub tok 1 (String.length tok - 1))
  else if String.contains tok '.' || String.contains tok 'e' then
    match float_of_string_opt tok with
    | Some f -> Instr.Imm (Value.of_float f)
    | None -> fail ~line "bad operand %s" tok
  else
    match Int64.of_string_opt tok with
    | Some i -> Instr.Imm (Value.Int i)
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Instr.Imm (Value.of_float f)
        | None -> fail ~line "bad operand %s" tok)

let pred_of ~line = function
  | "eq" -> Op.Eq
  | "ne" -> Op.Ne
  | "lt" -> Op.Lt
  | "le" -> Op.Le
  | "gt" -> Op.Gt
  | "ge" -> Op.Ge
  | p -> fail ~line "bad predicate %s" p

let math_of = function
  | "sqrt" -> Some Op.Sqrt
  | "sin" -> Some Op.Sin
  | "cos" -> Some Op.Cos
  | "exp" -> Some Op.Exp
  | "log" -> Some Op.Log
  | "fabs" -> Some Op.Fabs
  | "floor" -> Some Op.Floor
  | "pow" -> Some Op.Pow
  | "atan2" -> Some Op.Atan2
  | _ -> None

let rmw_of ~line = function
  | "add" -> Op.Rmw_add
  | "min" -> Op.Rmw_min
  | "max" -> Op.Rmw_max
  | "xchg" -> Op.Rmw_xchg
  | r -> fail ~line "bad rmw %s" r

let int_of ~line s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail ~line "expected integer, got %s" s

let bb_of ~line tok =
  if String.length tok > 2 && String.sub tok 0 2 = "bb" then
    int_of ~line (String.sub tok 2 (String.length tok - 2))
  else fail ~line "expected block label, got %s" tok

let parse_op ~line mnemonic rest_tokens =
  let parts = split_on_char_nonempty '.' mnemonic in
  match parts with
  | [ "add" ] -> Op.Binop Op.Add
  | [ "sub" ] -> Op.Binop Op.Sub
  | [ "mul" ] -> Op.Binop Op.Mul
  | [ "sdiv" ] -> Op.Binop Op.Sdiv
  | [ "srem" ] -> Op.Binop Op.Srem
  | [ "and" ] -> Op.Binop Op.And
  | [ "or" ] -> Op.Binop Op.Or
  | [ "xor" ] -> Op.Binop Op.Xor
  | [ "shl" ] -> Op.Binop Op.Shl
  | [ "lshr" ] -> Op.Binop Op.Lshr
  | [ "ashr" ] -> Op.Binop Op.Ashr
  | [ "fadd" ] -> Op.Fbinop Op.Fadd
  | [ "fsub" ] -> Op.Fbinop Op.Fsub
  | [ "fmul" ] -> Op.Fbinop Op.Fmul
  | [ "fdiv" ] -> Op.Fbinop Op.Fdiv
  | [ "icmp"; p ] -> Op.Icmp (pred_of ~line p)
  | [ "fcmp"; p ] -> Op.Fcmp (pred_of ~line p)
  | [ "select" ] -> Op.Select
  | [ "sitofp" ] -> Op.Cast Op.Sitofp
  | [ "fptosi" ] -> Op.Cast Op.Fptosi
  | [ "zext" ] -> Op.Cast Op.Zext
  | [ "trunc" ] -> Op.Cast Op.Trunc
  | [ "call"; m ] -> (
      match math_of m with
      | Some m -> Op.Math m
      | None -> fail ~line "unknown math call %s" m)
  | [ "gep"; scale ] -> Op.Gep (int_of ~line scale)
  | [ "load"; size ] -> Op.Load (int_of ~line size)
  | [ "store"; size ] -> Op.Store (int_of ~line size)
  | [ "atomicrmw"; r; size ] ->
      Op.Atomic_rmw (rmw_of ~line r, int_of ~line size)
  | [ "send"; chan ] -> Op.Send (int_of ~line chan)
  | [ "recv"; chan ] -> Op.Recv (int_of ~line chan)
  | [ "loadsend"; chan; size ] ->
      Op.Load_send (int_of ~line chan, int_of ~line size)
  | [ "storerecv"; chan; size ] ->
      Op.Store_recv (int_of ~line chan, int_of ~line size, None)
  | [ "storerecv"; r; chan; size ] ->
      Op.Store_recv (int_of ~line chan, int_of ~line size, Some (rmw_of ~line r))
  | [ "accel"; kind ] -> Op.Accel kind
  | [ "br" ] -> (
      match rest_tokens with
      | [ target ] -> Op.Br (bb_of ~line target)
      | _ -> fail ~line "br expects one target")
  | [ "condbr" ] -> (
      (* printer order: condbr <taken> <not-taken> <cond> *)
      match rest_tokens with
      | [ t; e; _cond ] -> Op.Cond_br (bb_of ~line t, bb_of ~line e)
      | _ -> fail ~line "condbr expects two targets and a condition")
  | [ "ret" ] -> Op.Ret
  | _ -> (
      match math_of mnemonic with
      | Some m -> Op.Math m
      | None -> fail ~line "unknown instruction %s" mnemonic)

type raw_instr = {
  r_op : Op.t;
  r_args : Instr.operand list;
  r_dst : int option;
  r_line : int;
}

let parse_instr ~line toks =
  let dst, toks =
    match toks with
    | d :: "=" :: rest
      when String.length d > 2 && d.[0] = '%' && d.[1] = 'r' -> (
        match int_of_string_opt (String.sub d 2 (String.length d - 2)) with
        | Some r -> (Some r, rest)
        | None -> fail ~line "bad destination %s" d)
    | _ -> (None, toks)
  in
  match toks with
  | [] -> fail ~line "empty instruction"
  | mnemonic :: args ->
      let op = parse_op ~line mnemonic args in
      let operands =
        match op with
        | Op.Br _ -> []
        | Op.Cond_br _ -> (
            match List.rev args with
            | cond :: _ -> [ parse_operand ~line cond ]
            | [] -> fail ~line "condbr expects a condition")
        | _ -> List.map (parse_operand ~line) args
      in
      { r_op = op; r_args = operands; r_dst = dst; r_line = line }

let build_func ~name ~nparams body_blocks =
  (* body_blocks: (bid, raw_instr list) in order. *)
  let next_id = ref 0 in
  let nregs = ref nparams in
  let note_reg r = if r + 1 > !nregs then nregs := r + 1 in
  let blocks =
    List.map
      (fun (bid, raws) ->
        let instrs =
          List.map
            (fun r ->
              (match r.r_dst with Some d -> note_reg d | None -> ());
              List.iter
                (function Instr.Reg x -> note_reg x | _ -> ())
                r.r_args;
              (match (Op.has_result r.r_op, r.r_dst) with
              | true, None ->
                  fail ~line:r.r_line "instruction needs a destination"
              | false, Some _ ->
                  fail ~line:r.r_line "instruction takes no destination"
              | _ -> ());
              let id = !next_id in
              incr next_id;
              Instr.make ~id ~op:r.r_op ~args:(Array.of_list r.r_args)
                ~dst:r.r_dst)
            raws
        in
        { Func.bid; instrs = Array.of_list instrs })
      body_blocks
  in
  Func.make ~name ~nparams ~nregs:!nregs ~blocks:(Array.of_list blocks)

type line_kind =
  | L_global of string * int * int
  | L_kernel of string * int
  | L_label of int
  | L_close
  | L_instr of raw_instr
  | L_blank

let classify_line ~line s =
  let toks = strip_brackets (tokens s) in
  match toks with
  | [] -> L_blank
  | "global" :: g :: ":" :: elems :: "x" :: size :: _
    when String.length g > 1 && g.[0] = '@' ->
      let size =
        (* "4B" *)
        if String.length size > 1 && size.[String.length size - 1] = 'B' then
          int_of ~line (String.sub size 0 (String.length size - 1))
        else int_of ~line size
      in
      L_global (String.sub g 1 (String.length g - 1), int_of ~line elems, size)
  | "kernel" :: k :: rest when String.length k > 1 && k.[0] = '@' -> (
      let nparams =
        List.find_map
          (fun t ->
            match String.split_on_char '=' t with
            | [ "params"; v ] -> int_of_string_opt v
            | _ -> None)
          rest
      in
      match nparams with
      | Some n -> L_kernel (String.sub k 1 (String.length k - 1), n)
      | None -> fail ~line "kernel header missing params=N")
  | [ "}" ] -> L_close
  | [ label ]
    when String.length label > 3
         && String.sub label 0 2 = "bb"
         && label.[String.length label - 1] = ':' ->
      L_label (int_of ~line (String.sub label 2 (String.length label - 3)))
  | _ -> L_instr (parse_instr ~line toks)

let program text =
  let prog = Program.create () in
  let lines = String.split_on_char '\n' text in
  let state = ref `Top in
  List.iteri
    (fun idx raw_line ->
      let line = idx + 1 in
      match classify_line ~line raw_line with
      | L_blank -> ()
      | L_global (name, elems, elem_size) ->
          if !state <> `Top then fail ~line "global inside kernel";
          ignore (Program.alloc prog name ~elems ~elem_size)
      | L_kernel (name, nparams) ->
          if !state <> `Top then fail ~line "nested kernel";
          state := `In_kernel (name, nparams, ref [])
      | L_label bid -> (
          match !state with
          | `In_kernel (_, _, blocks) -> blocks := (bid, ref []) :: !blocks
          | `Top -> fail ~line "label outside kernel")
      | L_instr raw -> (
          match !state with
          | `In_kernel (_, _, blocks) -> (
              match !blocks with
              | (_, instrs) :: _ -> instrs := raw :: !instrs
              | [] -> fail ~line "instruction before first block label")
          | `Top -> fail ~line "instruction outside kernel")
      | L_close -> (
          match !state with
          | `In_kernel (name, nparams, blocks) ->
              let body =
                List.rev_map (fun (bid, is) -> (bid, List.rev !is)) !blocks
              in
              Program.add_func prog (build_func ~name ~nparams body);
              state := `Top
          | `Top -> fail ~line "unmatched }"))
    lines;
  (match !state with
  | `In_kernel (name, _, _) ->
      fail ~line:(List.length lines) "kernel %s not closed" name
  | `Top -> ());
  (match Validate.check_program prog with
  | [] -> ()
  | errs ->
      invalid_arg
        (String.concat "\n"
           (List.map (fun e -> Format.asprintf "%a" Validate.pp_error e) errs)));
  prog

let kernel prog text =
  let sub = program text in
  match Program.funcs sub with
  | [ f ] ->
      Program.add_func prog f;
      f
  | fs ->
      invalid_arg
        (Printf.sprintf "Parse.kernel: expected exactly one kernel, got %d"
           (List.length fs))
