type t = Int of int64 | Float of float

let zero = Int 0L

let of_int i = Int (Int64.of_int i)

let of_float f = Float f

let of_bool b = Int (if b then 1L else 0L)

let to_int64 = function Int i -> i | Float f -> Int64.of_float f

let to_int v = Int64.to_int (to_int64 v)

let to_float = function Int i -> Int64.to_float i | Float f -> f

let to_bool = function Int i -> i <> 0L | Float f -> f <> 0.0

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int64.equal x y
  | Float x, Float y -> Float.equal x y
  | Int _, Float _ | Float _, Int _ -> false

let pp ppf = function
  | Int i -> Format.fprintf ppf "%Ld" i
  | Float f -> Format.fprintf ppf "%g" f

let to_string v = Format.asprintf "%a" pp v
