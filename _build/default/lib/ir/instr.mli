(** Instructions and operands.

    Registers are function-local virtual registers (LLVM IR after [mem2reg],
    with phi nodes replaced by register re-assignment; dependence analysis
    recovers the same def-use edges dynamically via last-writer tracking).
    [Tid]/[Ntiles] are the execution-environment queries of the paper's SPMD
    model. *)

type operand =
  | Reg of int  (** virtual register *)
  | Imm of Value.t  (** immediate constant *)
  | Glob of string  (** address of a named global, resolved at run time *)
  | Tid  (** this tile's id, 0 .. ntiles-1 *)
  | Ntiles  (** number of tiles executing the kernel *)

type t = {
  id : int;  (** index of this instruction within its function *)
  op : Op.t;
  args : operand array;
  dst : int option;  (** destination register, when [Op.has_result op] *)
}

val make : id:int -> op:Op.t -> args:operand array -> dst:int option -> t

val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit

(** Registers read by this instruction (no duplicates). *)
val uses : t -> int list

val equal_operand : operand -> operand -> bool
