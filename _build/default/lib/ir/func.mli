(** Kernels: functions made of basic blocks.

    A kernel is the unit MosaicSim simulates — "a specially named LLVM
    function" in the paper. Basic blocks are single-entry single-exit
    instruction sequences whose last instruction is the terminator. *)

type block = {
  bid : int;  (** block id; the control-flow trace is a sequence of these *)
  instrs : Instr.t array;  (** non-empty; last element is the terminator *)
}

type t = private {
  name : string;
  nparams : int;  (** parameters live in registers [0 .. nparams-1] *)
  nregs : int;  (** total virtual registers *)
  blocks : block array;  (** indexed by [bid]; entry is block 0 *)
  ninstrs : int;  (** total static instructions across all blocks *)
  index : (Instr.t * int) array;  (** instruction id -> (instr, block id) *)
}

val make :
  name:string -> nparams:int -> nregs:int -> blocks:block array -> t

val block : t -> int -> block

(** The terminator of a block (its last instruction). *)
val terminator : block -> Instr.t

(** [instr f ~id] is the static instruction with the given function-wide id. *)
val instr : t -> id:int -> Instr.t

(** Block id containing instruction [id]. *)
val block_of_instr : t -> id:int -> int

(** Successor block ids of a block, from its terminator. *)
val successors : block -> int list
