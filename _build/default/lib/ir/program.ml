type global = { gname : string; base : int; elems : int; elem_size : int }

type t = {
  funcs : (string, Func.t) Hashtbl.t;
  globals : (string, global) Hashtbl.t;
  mutable order : string list;  (** global names, allocation order *)
  mutable func_order : string list;
  mutable next_addr : int;
}

let line_size = 64

let base_addr = 0x1000

let create () =
  {
    funcs = Hashtbl.create 8;
    globals = Hashtbl.create 8;
    order = [];
    func_order = [];
    next_addr = base_addr;
  }

let add_func p (f : Func.t) =
  if Hashtbl.mem p.funcs f.Func.name then
    invalid_arg (Printf.sprintf "Program.add_func: duplicate %s" f.Func.name);
  Hashtbl.replace p.funcs f.Func.name f;
  p.func_order <- p.func_order @ [ f.Func.name ]

let find_func p name = Hashtbl.find_opt p.funcs name

let func_exn p name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Program.func_exn: no kernel %s" name)

let funcs p = List.map (Hashtbl.find p.funcs) p.func_order

let align_up x a = (x + a - 1) / a * a

let alloc p gname ~elems ~elem_size =
  if Hashtbl.mem p.globals gname then
    invalid_arg (Printf.sprintf "Program.alloc: duplicate global %s" gname);
  if elems <= 0 || elem_size <= 0 then
    invalid_arg "Program.alloc: sizes must be positive";
  let base = align_up p.next_addr line_size in
  let g = { gname; base; elems; elem_size } in
  p.next_addr <- base + (elems * elem_size);
  Hashtbl.replace p.globals gname g;
  p.order <- p.order @ [ gname ];
  g

let find_global p name = Hashtbl.find_opt p.globals name

let global_exn p name =
  match find_global p name with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Program.global_exn: no global %s" name)

let globals p = List.map (Hashtbl.find p.globals) p.order

let data_bytes p =
  Hashtbl.fold (fun _ g acc -> acc + (g.elems * g.elem_size)) p.globals 0

let heap_end p = p.next_addr
