type block_state = { mutable rev_instrs : Instr.t list; mutable closed : bool }

type t = {
  fname : string;
  nparams : int;
  mutable nregs : int;
  mutable next_id : int;
  mutable blocks : block_state array;
  mutable nblocks : int;
  mutable cur : int;
}

let fresh_block_state () = { rev_instrs = []; closed = false }

let create fname ~nparams =
  let b =
    {
      fname;
      nparams;
      nregs = nparams;
      next_id = 0;
      blocks = Array.init 8 (fun _ -> fresh_block_state ());
      nblocks = 1;
      cur = 0;
    }
  in
  b.blocks.(0) <- fresh_block_state ();
  b

let fresh_reg b =
  let r = b.nregs in
  b.nregs <- r + 1;
  r

let new_block b =
  if b.nblocks = Array.length b.blocks then begin
    let fresh = Array.init (2 * b.nblocks) (fun _ -> fresh_block_state ()) in
    Array.blit b.blocks 0 fresh 0 b.nblocks;
    b.blocks <- fresh
  end;
  let bid = b.nblocks in
  b.blocks.(bid) <- fresh_block_state ();
  b.nblocks <- bid + 1;
  bid

let switch_to b bid =
  if bid < 0 || bid >= b.nblocks then
    invalid_arg (Printf.sprintf "Builder.switch_to: bad block %d" bid);
  b.cur <- bid

let current_block b = b.cur

let emit b op args =
  let blk = b.blocks.(b.cur) in
  if blk.closed then
    invalid_arg
      (Printf.sprintf "Builder(%s): emit into terminated block %d" b.fname
         b.cur);
  let dst = if Op.has_result op then Some (fresh_reg b) else None in
  let i = Instr.make ~id:b.next_id ~op ~args ~dst in
  b.next_id <- b.next_id + 1;
  blk.rev_instrs <- i :: blk.rev_instrs;
  if Op.is_terminator op then blk.closed <- true;
  match dst with Some d -> Instr.Reg d | None -> Instr.Imm Value.zero

(* Operands *)

let param b n =
  if n < 0 || n >= b.nparams then
    invalid_arg (Printf.sprintf "Builder.param: %s has %d params" b.fname
                   b.nparams);
  Instr.Reg n

let imm n = Instr.Imm (Value.of_int n)
let fimm f = Instr.Imm (Value.of_float f)
let tru = Instr.Imm (Value.of_bool true)
let fls = Instr.Imm (Value.of_bool false)
let glob (g : Program.global) = Instr.Glob g.Program.gname
let tid = Instr.Tid
let ntiles = Instr.Ntiles

(* Arithmetic *)

let binop op b x y = emit b (Op.Binop op) [| x; y |]
let add b = binop Op.Add b
let sub b = binop Op.Sub b
let mul b = binop Op.Mul b
let sdiv b = binop Op.Sdiv b
let srem b = binop Op.Srem b
let and_ b = binop Op.And b
let or_ b = binop Op.Or b
let xor b = binop Op.Xor b
let shl b = binop Op.Shl b
let lshr b = binop Op.Lshr b
let ashr b = binop Op.Ashr b

let fbinop op b x y = emit b (Op.Fbinop op) [| x; y |]
let fadd b = fbinop Op.Fadd b
let fsub b = fbinop Op.Fsub b
let fmul b = fbinop Op.Fmul b
let fdiv b = fbinop Op.Fdiv b

let icmp b pred x y = emit b (Op.Icmp pred) [| x; y |]
let fcmp b pred x y = emit b (Op.Fcmp pred) [| x; y |]
let select b c x y = emit b Op.Select [| c; x; y |]
let sitofp b x = emit b (Op.Cast Op.Sitofp) [| x |]
let fptosi b x = emit b (Op.Cast Op.Fptosi) [| x |]
let math1 b m x = emit b (Op.Math m) [| x |]
let math2 b m x y = emit b (Op.Math m) [| x; y |]

(* Memory *)

let gep b ~scale base index = emit b (Op.Gep scale) [| base; index |]

let elem b (g : Program.global) index =
  gep b ~scale:g.Program.elem_size (glob g) index

let load b ?(size = 8) addr = emit b (Op.Load size) [| addr |]

let store b ?(size = 8) ~addr v = ignore (emit b (Op.Store size) [| addr; v |])

let atomic b rmw ?(size = 8) ~addr v =
  emit b (Op.Atomic_rmw (rmw, size)) [| addr; v |]

(* Communication and accelerators *)

let send b ~chan ~dst v = ignore (emit b (Op.Send chan) [| dst; v |])

let load_send b ~chan ?(size = 8) ~dst addr =
  ignore (emit b (Op.Load_send (chan, size)) [| dst; addr |])

let recv b ~chan = emit b (Op.Recv chan) [||]

let store_recv b ~chan ?(size = 8) ?rmw ~addr () =
  ignore (emit b (Op.Store_recv (chan, size, rmw)) [| addr |])

let accel b kind args = ignore (emit b (Op.Accel kind) (Array.of_list args))

(* Mutable variables. A move is [select true v v]: type-preserving, one
   ALU-class instruction — the counterpart of the phi LLVM would insert. *)

let mov_into b r v =
  let blk = b.blocks.(b.cur) in
  if blk.closed then
    invalid_arg
      (Printf.sprintf "Builder(%s): emit into terminated block %d" b.fname
         b.cur);
  let i =
    Instr.make ~id:b.next_id ~op:Op.Select ~args:[| tru; v; v |] ~dst:(Some r)
  in
  b.next_id <- b.next_id + 1;
  blk.rev_instrs <- i :: blk.rev_instrs

let var b init =
  let r = fresh_reg b in
  mov_into b r init;
  Instr.Reg r

let assign b ~var v =
  match var with
  | Instr.Reg r -> mov_into b r v
  | Instr.Imm _ | Instr.Glob _ | Instr.Tid | Instr.Ntiles ->
      invalid_arg "Builder.assign: target is not a variable"

(* Control flow *)

let br b target = ignore (emit b (Op.Br target) [||])

let cond_br b cond taken not_taken =
  ignore (emit b (Op.Cond_br (taken, not_taken)) [| cond |])

let if_else b cond then_f else_f =
  let then_bb = new_block b in
  let else_bb = new_block b in
  let join_bb = new_block b in
  cond_br b cond then_bb else_bb;
  switch_to b then_bb;
  then_f ();
  if not b.blocks.(b.cur).closed then br b join_bb;
  switch_to b else_bb;
  else_f ();
  if not b.blocks.(b.cur).closed then br b join_bb;
  switch_to b join_bb

let if_ b cond then_f = if_else b cond then_f (fun () -> ())

let while_ b ~cond body =
  let header = new_block b in
  br b header;
  switch_to b header;
  let c = cond () in
  let body_bb = new_block b in
  let exit_bb = new_block b in
  cond_br b c body_bb exit_bb;
  switch_to b body_bb;
  body ();
  if not b.blocks.(b.cur).closed then br b header;
  switch_to b exit_bb

let for_ b ~from ~to_ ?(step = 1) body =
  let iv = var b from in
  while_ b
    ~cond:(fun () -> icmp b Op.Lt iv to_)
    (fun () ->
      body iv;
      assign b ~var:iv (add b iv (imm step)))

let ret b ?value () =
  let args = match value with Some v -> [| v |] | None -> [||] in
  ignore (emit b Op.Ret args)

(* Finalization *)

let finalize b =
  let blocks =
    Array.init b.nblocks (fun bid ->
        let st = b.blocks.(bid) in
        if not st.closed then
          invalid_arg
            (Printf.sprintf "Builder(%s): block %d not terminated" b.fname bid);
        { Func.bid; instrs = Array.of_list (List.rev st.rev_instrs) })
  in
  Func.make ~name:b.fname ~nparams:b.nparams ~nregs:b.nregs ~blocks

let define prog name ~nparams body =
  let b = create name ~nparams in
  body b;
  let f = finalize b in
  Program.add_func prog f;
  f
