(** Imperative kernel builder — the reproduction's front-end.

    Plays the role of Clang in the paper's toolchain: workloads are written
    against this DSL and lowered to IR basic blocks. Emitters append
    instructions to the current block and return the result operand;
    structured helpers ([if_], [while_], [for_]) create the block graph, so
    kernels read like the C they replace.

    Loop-carried values use [var]/[assign], which compile to
    register-move instructions — the moral equivalent of the phi nodes LLVM
    would place (MosaicSim executes phis as instructions too). *)

type t

(** [define prog name ~nparams body] builds kernel [name], runs [body] to
    emit its code (starting in entry block 0), finalizes, registers the
    function in [prog] and returns it. Raises [Invalid_argument] if a block
    is left unterminated or code is emitted after a terminator. *)
val define : Program.t -> string -> nparams:int -> (t -> unit) -> Func.t

(** {1 Operands} *)

val param : t -> int -> Instr.operand
val imm : int -> Instr.operand
val fimm : float -> Instr.operand
val tru : Instr.operand
val fls : Instr.operand
val glob : Program.global -> Instr.operand
val tid : Instr.operand
val ntiles : Instr.operand

(** {1 Arithmetic} *)

val add : t -> Instr.operand -> Instr.operand -> Instr.operand
val sub : t -> Instr.operand -> Instr.operand -> Instr.operand
val mul : t -> Instr.operand -> Instr.operand -> Instr.operand
val sdiv : t -> Instr.operand -> Instr.operand -> Instr.operand
val srem : t -> Instr.operand -> Instr.operand -> Instr.operand
val and_ : t -> Instr.operand -> Instr.operand -> Instr.operand
val or_ : t -> Instr.operand -> Instr.operand -> Instr.operand
val xor : t -> Instr.operand -> Instr.operand -> Instr.operand
val shl : t -> Instr.operand -> Instr.operand -> Instr.operand
val lshr : t -> Instr.operand -> Instr.operand -> Instr.operand
val ashr : t -> Instr.operand -> Instr.operand -> Instr.operand
val fadd : t -> Instr.operand -> Instr.operand -> Instr.operand
val fsub : t -> Instr.operand -> Instr.operand -> Instr.operand
val fmul : t -> Instr.operand -> Instr.operand -> Instr.operand
val fdiv : t -> Instr.operand -> Instr.operand -> Instr.operand
val icmp : t -> Op.pred -> Instr.operand -> Instr.operand -> Instr.operand
val fcmp : t -> Op.pred -> Instr.operand -> Instr.operand -> Instr.operand
val select :
  t -> Instr.operand -> Instr.operand -> Instr.operand -> Instr.operand
val sitofp : t -> Instr.operand -> Instr.operand
val fptosi : t -> Instr.operand -> Instr.operand
val math1 : t -> Op.math -> Instr.operand -> Instr.operand
val math2 : t -> Op.math -> Instr.operand -> Instr.operand -> Instr.operand

(** {1 Memory} *)

(** [gep b ~scale base index] is [base + index * scale] (bytes). *)
val gep : t -> scale:int -> Instr.operand -> Instr.operand -> Instr.operand

(** [elem b g index] is the address of [g]'s [index]-th element. *)
val elem : t -> Program.global -> Instr.operand -> Instr.operand

val load : t -> ?size:int -> Instr.operand -> Instr.operand
val store : t -> ?size:int -> addr:Instr.operand -> Instr.operand -> unit

(** Atomic read-modify-write; returns the old value. *)
val atomic :
  t -> Op.rmw -> ?size:int -> addr:Instr.operand -> Instr.operand ->
  Instr.operand

(** {1 Communication and accelerators} *)

val send : t -> chan:int -> dst:Instr.operand -> Instr.operand -> unit

(** Terminal load: load from [addr] and push the value into [dst]'s
    channel (DeSC decoupling). *)
val load_send :
  t -> chan:int -> ?size:int -> dst:Instr.operand -> Instr.operand -> unit
val recv : t -> chan:int -> Instr.operand

(** Store-from-channel: the stored value arrives over [chan] and drains in
    the background (DeSC store value buffer). *)
val store_recv :
  t -> chan:int -> ?size:int -> ?rmw:Op.rmw -> addr:Instr.operand -> unit ->
  unit
val accel : t -> string -> Instr.operand list -> unit

(** {1 Mutable variables (loop-carried values)} *)

(** [var b init] allocates a register and moves [init] into it. *)
val var : t -> Instr.operand -> Instr.operand

(** [assign b ~var v] moves [v] into [var]'s register. Raises
    [Invalid_argument] if [var] is not a [var]/register operand. *)
val assign : t -> var:Instr.operand -> Instr.operand -> unit

(** {1 Control flow} *)

val if_ : t -> Instr.operand -> (unit -> unit) -> unit
val if_else : t -> Instr.operand -> (unit -> unit) -> (unit -> unit) -> unit
val while_ : t -> cond:(unit -> Instr.operand) -> (unit -> unit) -> unit

(** [for_ b ~from ~to_ body] is a counted loop over [\[from, to_)]. *)
val for_ :
  t -> from:Instr.operand -> to_:Instr.operand -> ?step:int ->
  (Instr.operand -> unit) -> unit

val ret : t -> ?value:Instr.operand -> unit -> unit

(** {1 Raw block plumbing (for compiler passes and unusual shapes)} *)

val new_block : t -> int
val switch_to : t -> int -> unit
val br : t -> int -> unit
val cond_br : t -> Instr.operand -> int -> int -> unit
val current_block : t -> int
