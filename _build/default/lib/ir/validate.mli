(** IR well-formedness checker (the module verifier).

    Catches builder and compiler-pass mistakes before they surface as
    confusing simulator behaviour: unterminated or terminator-in-the-middle
    blocks, out-of-range registers and branch targets, reads of registers no
    path can have written, arity errors. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

(** All problems found in a function; empty means well-formed. *)
val check_func : Func.t -> error list

(** Check every kernel of a program, and that every [Glob] operand resolves. *)
val check_program : Program.t -> error list

(** Raises [Invalid_argument] with a rendered report when a check fails. *)
val check_exn : Program.t -> unit
