(** Opcodes of the MosaicSim IR.

    The instruction set mirrors LLVM IR after [mem2reg]: arithmetic on
    registers, explicit address computation ([Gep]), typed loads/stores,
    atomic read-modify-writes, terminators — plus the MosaicSim extensions
    the paper adds through LLVM passes: inter-tile [Send]/[Recv] message
    primitives and [Accel] accelerator-invocation instructions. *)

type ibinop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Srem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type pred = Eq | Ne | Lt | Le | Gt | Ge

type cast = Sitofp | Fptosi | Zext | Trunc

type math = Sqrt | Sin | Cos | Exp | Log | Fabs | Floor | Pow | Atan2

type rmw = Rmw_add | Rmw_min | Rmw_max | Rmw_xchg

type t =
  | Binop of ibinop
  | Fbinop of fbinop
  | Icmp of pred
  | Fcmp of pred
  | Select  (** args: cond, if-true, if-false *)
  | Cast of cast
  | Math of math
  | Gep of int
      (** [Gep scale]: args base, index; result is [base + index * scale]
          (bytes), LLVM's getelementptr for arrays of [scale]-byte elements *)
  | Load of int  (** [Load size] reads [size] bytes; args: address *)
  | Store of int  (** [Store size]; args: address, value *)
  | Atomic_rmw of rmw * int
      (** atomic read-modify-write of a [size]-byte location; args: address,
          operand; result is the old value *)
  | Send of int
      (** [Send chan]; args: destination tile id, value. Inter-tile message
          enqueued through the Interleaver *)
  | Load_send of int * int
      (** [Load_send (chan, size)]; args: destination tile id, address.
          DeSC-style terminal load: reads memory and pushes the value
          straight into the destination tile's channel without occupying a
          register — the issuing core never waits for the data *)
  | Recv of int  (** [Recv chan]; blocks until a matching message arrives *)
  | Store_recv of int * int * rmw option
      (** [Store_recv (chan, size, rmw)]; args: address. DeSC-style store
          value buffer: the store's data comes from the channel and drains
          to memory in the background; the issuing core retires it
          immediately. [rmw] makes it an atomic update instead of a plain
          store *)
  | Accel of string
      (** [Accel kind]: invoke the accelerator model registered under
          [kind]; args are its configuration parameters *)
  | Br of int  (** unconditional branch to block id *)
  | Cond_br of int * int  (** args: condition; targets (taken, not-taken) *)
  | Ret  (** optional single arg: return value *)

(** Functional-unit class used by tile models to assign latency, energy and
    functional-unit limits to an opcode. *)
type op_class =
  | C_ialu  (** integer add/sub/logic/shift, compares, casts, select *)
  | C_imul  (** integer multiply *)
  | C_idiv  (** integer divide/remainder *)
  | C_falu  (** FP add/sub *)
  | C_fmul  (** FP multiply *)
  | C_fdiv  (** FP divide *)
  | C_fmath  (** transcendental math calls *)
  | C_agu  (** address generation (GEP) *)
  | C_load
  | C_store
  | C_atomic
  | C_branch
  | C_send
  | C_recv
  | C_accel

val classify : t -> op_class

val is_terminator : t -> bool

(** Loads, stores and atomics: instructions that occupy an MAO/LSQ entry and
    access the memory hierarchy. *)
val is_mem : t -> bool

(** Instructions whose latency is dynamic (memory hierarchy or message
    matching) rather than a fixed functional-unit latency. *)
val is_dynamic_cost : t -> bool

(** Access size in bytes for memory operations. *)
val mem_size : t -> int option

(** True for instructions that produce a result register. *)
val has_result : t -> bool

val pp : Format.formatter -> t -> unit
val pp_class : Format.formatter -> op_class -> unit
val class_to_string : op_class -> string

val all_classes : op_class list
