(** Function-rebuilding helpers shared by compiler passes.

    Passes manipulate instruction lists per block and then call [renumber]
    to restore the invariant that instruction ids are contiguous and ordered
    block-by-block. *)

(** [renumber ~name ~nparams ~nregs blocks] rebuilds a function from blocks
    whose instructions may carry stale ids; fresh ids are assigned in block
    order. Block ids must already equal their indices. *)
val renumber :
  name:string ->
  nparams:int ->
  nregs:int ->
  Mosaic_ir.Instr.t list array ->
  Mosaic_ir.Func.t

(** [map_operands f instr] rewrites each operand through [f]. *)
val map_operands :
  (Mosaic_ir.Instr.operand -> Mosaic_ir.Instr.operand) ->
  Mosaic_ir.Instr.t ->
  Mosaic_ir.Instr.t

(** Number of static definitions of each register in a function. *)
val def_counts : Mosaic_ir.Func.t -> int array

(** Number of static reads of each register in a function. *)
val use_counts : Mosaic_ir.Func.t -> int array
