lib/compiler/dae.ml: Array Func Instr Int List Mosaic_ir Op Printf Queue Rewrite Set Stdlib Value
