lib/compiler/passes.ml: Array Eval Func Hashtbl Instr List Mosaic_ir Op Option Rewrite Stdlib Value
