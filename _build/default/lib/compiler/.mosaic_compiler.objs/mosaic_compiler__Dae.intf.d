lib/compiler/dae.mli: Mosaic_ir
