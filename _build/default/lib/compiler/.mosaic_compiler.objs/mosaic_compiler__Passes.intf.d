lib/compiler/passes.mli: Mosaic_ir
