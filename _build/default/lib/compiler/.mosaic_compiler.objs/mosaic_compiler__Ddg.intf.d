lib/compiler/ddg.mli: Mosaic_ir
