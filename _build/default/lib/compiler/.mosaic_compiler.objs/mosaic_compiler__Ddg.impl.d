lib/compiler/ddg.ml: Array Func Hashtbl Instr List Mosaic_ir Op Option
