lib/compiler/rewrite.mli: Mosaic_ir
