lib/compiler/rewrite.ml: Array Func Instr List Mosaic_ir Stdlib
