open Mosaic_ir

let size (f : Func.t) = f.Func.ninstrs

let is_pure (op : Op.t) =
  match op with
  | Op.Binop _ | Op.Fbinop _ | Op.Icmp _ | Op.Fcmp _ | Op.Select | Op.Cast _
  | Op.Math _ | Op.Gep _ ->
      true
  | Op.Load _ | Op.Store _ | Op.Atomic_rmw _ | Op.Load_send _
  | Op.Store_recv _ | Op.Send _ | Op.Recv _ | Op.Accel _ | Op.Br _
  | Op.Cond_br _ | Op.Ret ->
      false

let imm_args (i : Instr.t) =
  let vals =
    Array.map
      (fun operand ->
        match operand with Instr.Imm v -> Some v | _ -> None)
      i.Instr.args
  in
  if Array.for_all Option.is_some vals then Some (Array.map Option.get vals)
  else None

let fold_value (op : Op.t) (vs : Value.t array) =
  match op with
  | Op.Binop b ->
      Some (Value.Int (Eval.ibinop b (Value.to_int64 vs.(0)) (Value.to_int64 vs.(1))))
  | Op.Fbinop b ->
      Some (Value.Float (Eval.fbinop b (Value.to_float vs.(0)) (Value.to_float vs.(1))))
  | Op.Icmp p ->
      Some (Value.of_bool (Eval.pred_int p (Value.to_int64 vs.(0)) (Value.to_int64 vs.(1))))
  | Op.Fcmp p ->
      Some
        (Value.of_bool
           (Eval.pred_float p (Value.to_float vs.(0)) (Value.to_float vs.(1))))
  | Op.Select -> Some (if Value.to_bool vs.(0) then vs.(1) else vs.(2))
  | Op.Cast c -> Some (Eval.cast c vs.(0))
  | Op.Math m -> Some (Value.Float (Eval.math m (Array.map Value.to_float vs)))
  | Op.Gep scale ->
      Some (Value.of_int (Value.to_int vs.(0) + (Value.to_int vs.(1) * scale)))
  | _ -> None

let substitute subst (i : Instr.t) =
  Rewrite.map_operands
    (fun operand ->
      match operand with
      | Instr.Reg r -> (
          match Hashtbl.find_opt subst r with
          | Some replacement -> replacement
          | None -> operand)
      | _ -> operand)
    i

let rebuild_like (f : Func.t) per_block =
  let blocks =
    Array.map
      (fun (b : Func.block) -> per_block (Array.to_list b.Func.instrs))
      f.Func.blocks
  in
  Rewrite.renumber ~name:f.Func.name ~nparams:f.Func.nparams
    ~nregs:f.Func.nregs blocks

let constant_fold (f : Func.t) =
  let defs = Rewrite.def_counts f in
  (* register -> constant it always holds *)
  let subst = Hashtbl.create 16 in
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (fun (i : Instr.t) ->
          match (i.Instr.dst, imm_args i) with
          | Some d, Some vs when defs.(d) = 1 && is_pure i.Instr.op -> (
              match fold_value i.Instr.op vs with
              | Some v -> Hashtbl.replace subst d (Instr.Imm v)
              | None -> ())
          | _ -> ())
        b.Func.instrs)
    f.Func.blocks;
  if Hashtbl.length subst = 0 then f
  else
    rebuild_like f (fun instrs ->
        List.filter_map
          (fun (i : Instr.t) ->
            match i.Instr.dst with
            | Some d when Hashtbl.mem subst d -> None
            | _ -> Some (substitute subst i))
          instrs)

(* A move is [select true v v]. Forward it when the source needs no
   register (Imm/Glob/Tid/Ntiles): always safe, no liveness reasoning.
   Register sources are left alone — in a non-SSA IR forwarding them is
   only sound under dominance conditions we do not track. *)
let copy_propagate (f : Func.t) =
  let defs = Rewrite.def_counts f in
  let subst = Hashtbl.create 16 in
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (fun (i : Instr.t) ->
          match (i.Instr.op, i.Instr.dst, i.Instr.args) with
          | Op.Select, Some d, [| Instr.Imm c; v; v' |]
            when Value.to_bool c && Instr.equal_operand v v' && defs.(d) = 1
            -> (
              match v with
              | Instr.Imm _ | Instr.Glob _ | Instr.Tid | Instr.Ntiles ->
                  Hashtbl.replace subst d v
              | Instr.Reg _ -> ())
          | _ -> ())
        b.Func.instrs)
    f.Func.blocks;
  if Hashtbl.length subst = 0 then f
  else
    rebuild_like f (fun instrs ->
        List.filter_map
          (fun (i : Instr.t) ->
            match i.Instr.dst with
            | Some d when Hashtbl.mem subst d -> None
            | _ -> Some (substitute subst i))
          instrs)

let dead_code_elim (f : Func.t) =
  let uses = Rewrite.use_counts f in
  let dead (i : Instr.t) =
    is_pure i.Instr.op
    &&
    match i.Instr.dst with Some d -> uses.(d) = 0 | None -> false
  in
  let any_dead =
    Array.exists
      (fun (b : Func.block) -> Array.exists dead b.Func.instrs)
      f.Func.blocks
  in
  if not any_dead then f
  else
    rebuild_like f (fun instrs ->
        List.filter (fun i -> not (dead i)) instrs)

(* Where is each register used? Track, per register, whether any read
   happens in a different block than [bid] (conservatively forbids
   cross-block reuse in a non-SSA IR). *)
let used_outside_block (f : Func.t) =
  let outside = Array.make (Stdlib.max f.Func.nregs 1) false in
  let seen_in = Array.make (Stdlib.max f.Func.nregs 1) (-1) in
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun r ->
              if seen_in.(r) = -1 then seen_in.(r) <- b.Func.bid
              else if seen_in.(r) <> b.Func.bid then outside.(r) <- true)
            (Instr.uses i))
        b.Func.instrs)
    f.Func.blocks;
  (* a register first READ in block A and later in block B *)
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun r -> if seen_in.(r) <> b.Func.bid then outside.(r) <- true)
            (Instr.uses i))
        b.Func.instrs)
    f.Func.blocks;
  outside

let common_subexpr_elim (f : Func.t) =
  let defs = Rewrite.def_counts f in
  let outside = used_outside_block f in
  let changed = ref false in
  let blocks =
    Array.map
      (fun (b : Func.block) ->
        (* register -> version, bumped on each redefinition in the block *)
        let version = Hashtbl.create 16 in
        let version_of r =
          Option.value ~default:0 (Hashtbl.find_opt version r)
        in
        (* (op, versioned operands) -> register holding the value *)
        let available = Hashtbl.create 16 in
        (* block-local substitution for eliminated destinations *)
        let subst = Hashtbl.create 16 in
        let rewrite_operand operand =
          match operand with
          | Instr.Reg r -> (
              match Hashtbl.find_opt subst r with
              | Some r' -> Instr.Reg r'
              | None -> operand)
          | _ -> operand
        in
        let out = ref [] in
        Array.iter
          (fun (i : Instr.t) ->
            let i = Rewrite.map_operands rewrite_operand i in
            let keyable =
              is_pure i.Instr.op
              &&
              match i.Instr.dst with
              | Some d -> defs.(d) = 1 && not outside.(d)
              | None -> false
            in
            let key =
              ( i.Instr.op,
                Array.to_list
                  (Array.map
                     (fun operand ->
                       match operand with
                       | Instr.Reg r -> (operand, version_of r)
                       | _ -> (operand, 0))
                     i.Instr.args) )
            in
            let eliminated =
              keyable
              &&
              match Hashtbl.find_opt available key with
              | Some prior ->
                  (match i.Instr.dst with
                  | Some d ->
                      Hashtbl.replace subst d prior;
                      changed := true;
                      true
                  | None -> false)
              | None ->
                  (match i.Instr.dst with
                  | Some d when defs.(d) = 1 ->
                      Hashtbl.replace available key d
                  | _ -> ());
                  false
            in
            if not eliminated then begin
              out := i :: !out;
              match i.Instr.dst with
              | Some d -> Hashtbl.replace version d (version_of d + 1)
              | None -> ()
            end)
          b.Func.instrs;
        List.rev !out)
      f.Func.blocks
  in
  if not !changed then f
  else
    Rewrite.renumber ~name:f.Func.name ~nparams:f.Func.nparams
      ~nregs:f.Func.nregs blocks

let optimize f =
  let rec loop f n =
    if n = 0 then f
    else
      let f' =
        dead_code_elim (common_subexpr_elim (copy_propagate (constant_fold f)))
      in
      if size f' = size f then f' else loop f' (n - 1)
  in
  loop f 8
