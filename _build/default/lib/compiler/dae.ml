open Mosaic_ir

type info = {
  access : Func.t;
  execute : Func.t;
  sent_loads : int;
  routed_stores : int;
  duplicated : int;
}

module Int_set = Set.Make (Int)

let producers_of (f : Func.t) =
  (* register -> static instruction ids that define it *)
  let map = Array.make (Stdlib.max f.Func.nregs 1) [] in
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (fun (i : Instr.t) ->
          match i.Instr.dst with
          | Some d -> map.(d) <- i.Instr.id :: map.(d)
          | None -> ())
        b.Func.instrs)
    f.Func.blocks;
  map

(* Backward closure over register def-use from operand seeds.
   [stop_at_mem]: when a load/atomic joins the closure, do not pull in its
   operands (the execute slice receives its value over a channel instead of
   recomputing the address). *)
let closure (f : Func.t) producers ~seeds ~stop_at_mem =
  let set = ref Int_set.empty in
  let work = Queue.create () in
  let push_producers_of_reg r =
    List.iter (fun id -> Queue.add id work) producers.(r)
  in
  let push_operand operand =
    match operand with
    | Instr.Reg r -> push_producers_of_reg r
    | Instr.Imm _ | Instr.Glob _ | Instr.Tid | Instr.Ntiles -> ()
  in
  List.iter push_operand seeds;
  while not (Queue.is_empty work) do
    let id = Queue.take work in
    if not (Int_set.mem id !set) then begin
      set := Int_set.add id !set;
      let i = Func.instr f ~id in
      let stop = stop_at_mem && Op.is_mem i.Instr.op in
      if not stop then Array.iter push_operand i.Instr.args
    end
  done;
  !set

let check_sliceable (f : Func.t) =
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Op.Send _ | Op.Recv _ | Op.Accel _ ->
              invalid_arg
                (Printf.sprintf
                   "Dae.slice: %s already uses communication/accelerators"
                   f.Func.name)
          | _ -> ())
        b.Func.instrs)
    f.Func.blocks

let dummy_id = -1

let mk op args dst = Instr.make ~id:dummy_id ~op ~args ~dst

let slice ?(load_chan = 0) ?(store_chan = 1) (f : Func.t) =
  check_sliceable f;
  let producers = producers_of f in
  (* Execute-side closure: value computation. Seeds: store values, branch
     conditions, return values. Loads inside it become receives. *)
  let exec_seeds = ref [] in
  (* Access-side closure: addresses and control. *)
  let access_seeds = ref [] in
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Op.Store _ | Op.Atomic_rmw _ ->
              exec_seeds := i.Instr.args.(1) :: !exec_seeds;
              access_seeds := i.Instr.args.(0) :: !access_seeds
          | Op.Load _ -> access_seeds := i.Instr.args.(0) :: !access_seeds
          | Op.Cond_br _ | Op.Ret ->
              Array.iter
                (fun a ->
                  exec_seeds := a :: !exec_seeds;
                  access_seeds := a :: !access_seeds)
                i.Instr.args
          | _ -> ())
        b.Func.instrs)
    f.Func.blocks;
  let exec_set =
    closure f producers ~seeds:!exec_seeds ~stop_at_mem:true
  in
  let access_set =
    closure f producers ~seeds:!access_seeds ~stop_at_mem:false
  in
  let in_exec (i : Instr.t) = Int_set.mem i.Instr.id exec_set in
  let in_access (i : Instr.t) = Int_set.mem i.Instr.id access_set in
  (* A load whose value only the execute slice consumes becomes a terminal
     load (DeSC): load-and-push, never blocking the access core. *)
  let is_terminal_load (i : Instr.t) =
    match i.Instr.op with
    | Op.Load _ -> in_exec i && not (in_access i)
    | _ -> false
  in
  (* Stores and atomics whose value operand is computed (a register) get
     that value from the execute slice over the store channel. *)
  let is_routed_store (i : Instr.t) =
    match i.Instr.op with
    | Op.Store _ | Op.Atomic_rmw _ -> (
        match i.Instr.args.(1) with Instr.Reg _ -> true | _ -> false)
    | _ -> false
  in
  (* --- Access slice --- *)
  let a_nregs = ref f.Func.nregs in
  let fresh_a () =
    let r = !a_nregs in
    incr a_nregs;
    r
  in
  let a_w = fresh_a () in
  let a_partner = fresh_a () in
  let a_rewrite =
    Rewrite.map_operands (fun operand ->
        match operand with
        | Instr.Ntiles -> Instr.Reg a_w
        | _ -> operand)
  in
  let sent_loads = ref 0 and routed_stores = ref 0 in
  let access_blocks =
    Array.map
      (fun (b : Func.block) ->
        let out = ref [] in
        let emit i = out := i :: !out in
        if b.Func.bid = 0 then begin
          emit
            (mk (Op.Binop Op.Sdiv)
               [| Instr.Ntiles; Instr.Imm (Value.of_int 2) |]
               (Some a_w));
          emit
            (mk (Op.Binop Op.Add) [| Instr.Tid; Instr.Reg a_w |]
               (Some a_partner))
        end;
        Array.iter
          (fun (i : Instr.t) ->
            let term = Op.is_terminator i.Instr.op in
            if term || in_access i || Op.is_mem i.Instr.op then begin
              let i' = a_rewrite i in
              let send_result () =
                (* Forward this op's result when the execute slice needs it. *)
                match i.Instr.op with
                | (Op.Load _ | Op.Atomic_rmw _) when in_exec i ->
                    incr sent_loads;
                    let v =
                      match i.Instr.dst with
                      | Some d -> Instr.Reg d
                      | None -> assert false
                    in
                    emit
                      (mk (Op.Send load_chan) [| Instr.Reg a_partner; v |] None)
                | _ -> ()
              in
              if is_terminal_load i then begin
                incr sent_loads;
                let size =
                  match Op.mem_size i.Instr.op with Some s -> s | None -> 8
                in
                emit
                  (mk
                     (Op.Load_send (load_chan, size))
                     [| Instr.Reg a_partner; i'.Instr.args.(0) |]
                     None)
              end
              else if is_routed_store i' && not (in_exec i) then begin
                (* Value comes from execute and nothing downstream needs the
                   old value: fire-and-forget via the store value buffer. *)
                incr routed_stores;
                let size =
                  match Op.mem_size i.Instr.op with Some sz -> sz | None -> 8
                in
                let rmw =
                  match i.Instr.op with
                  | Op.Atomic_rmw (r, _) -> Some r
                  | _ -> None
                in
                emit
                  (mk
                     (Op.Store_recv (store_chan, size, rmw))
                     [| i'.Instr.args.(0) |]
                     None)
              end
              else if is_routed_store i' then begin
                incr routed_stores;
                let r = fresh_a () in
                emit (mk (Op.Recv store_chan) [||] (Some r));
                emit
                  {
                    i' with
                    Instr.args = [| i'.Instr.args.(0); Instr.Reg r |];
                  };
                send_result ()
              end
              else begin
                emit i';
                send_result ()
              end
            end)
          b.Func.instrs;
        List.rev !out)
      f.Func.blocks
  in
  let access =
    Rewrite.renumber
      ~name:(f.Func.name ^ "_access")
      ~nparams:f.Func.nparams ~nregs:!a_nregs access_blocks
  in
  (* --- Execute slice --- *)
  let e_nregs = ref f.Func.nregs in
  let fresh_e () =
    let r = !e_nregs in
    incr e_nregs;
    r
  in
  let e_w = fresh_e () in
  let e_wid = fresh_e () in
  let e_rewrite =
    Rewrite.map_operands (fun operand ->
        match operand with
        | Instr.Ntiles -> Instr.Reg e_w
        | Instr.Tid -> Instr.Reg e_wid
        | _ -> operand)
  in
  let duplicated = ref 0 in
  let execute_blocks =
    Array.map
      (fun (b : Func.block) ->
        let out = ref [] in
        let emit i = out := i :: !out in
        if b.Func.bid = 0 then begin
          emit
            (mk (Op.Binop Op.Sdiv)
               [| Instr.Ntiles; Instr.Imm (Value.of_int 2) |]
               (Some e_w));
          emit
            (mk (Op.Binop Op.Sub) [| Instr.Tid; Instr.Reg e_w |] (Some e_wid))
        end;
        Array.iter
          (fun (i : Instr.t) ->
            let term = Op.is_terminator i.Instr.op in
            if term then emit (e_rewrite i)
            else
              match i.Instr.op with
              | Op.Load _ ->
                  if in_exec i then
                    emit (mk (Op.Recv load_chan) [||] i.Instr.dst)
              | Op.Atomic_rmw _ ->
                  if is_routed_store i then begin
                    let i' = e_rewrite i in
                    emit
                      (mk (Op.Send store_chan)
                         [| Instr.Reg e_wid; i'.Instr.args.(1) |]
                         None)
                  end;
                  if in_exec i then
                    emit (mk (Op.Recv load_chan) [||] i.Instr.dst)
              | Op.Store _ ->
                  if is_routed_store i then
                    let i' = e_rewrite i in
                    emit
                      (mk (Op.Send store_chan)
                         [| Instr.Reg e_wid; i'.Instr.args.(1) |]
                         None)
              | _ ->
                  if in_exec i then begin
                    if in_access i then incr duplicated;
                    emit (e_rewrite i)
                  end)
          b.Func.instrs;
        List.rev !out)
      f.Func.blocks
  in
  let execute =
    Rewrite.renumber
      ~name:(f.Func.name ^ "_execute")
      ~nparams:f.Func.nparams ~nregs:!e_nregs execute_blocks
  in
  {
    access;
    execute;
    sent_loads = !sent_loads;
    routed_stores = !routed_stores;
    duplicated = !duplicated;
  }
