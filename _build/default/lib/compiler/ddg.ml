open Mosaic_ir

type node_deps = { intra : int array; extern_regs : int array }

type t = { func : Func.t; deps : node_deps array }

let build (f : Func.t) =
  let deps =
    Array.make f.Func.ninstrs { intra = [||]; extern_regs = [||] }
  in
  Array.iter
    (fun (b : Func.block) ->
      (* Last writer of each register within this block, as we scan. *)
      let last_def = Hashtbl.create 16 in
      Array.iter
        (fun (i : Instr.t) ->
          let intra = ref [] and extern = ref [] in
          List.iter
            (fun r ->
              match Hashtbl.find_opt last_def r with
              | Some producer ->
                  if not (List.mem producer !intra) then
                    intra := producer :: !intra
              | None ->
                  if (not (List.mem r !extern)) && r >= f.Func.nparams then
                    extern := r :: !extern)
            (Instr.uses i);
          deps.(i.Instr.id) <-
            {
              intra = Array.of_list (List.rev !intra);
              extern_regs = Array.of_list (List.rev !extern);
            };
          (match i.Instr.dst with
          | Some d -> Hashtbl.replace last_def d i.Instr.id
          | None -> ()))
        b.Func.instrs)
    f.Func.blocks;
  { func = f; deps }

let class_histogram t =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (fun (i : Instr.t) ->
          let c = Op.classify i.Instr.op in
          let n = Option.value ~default:0 (Hashtbl.find_opt counts c) in
          Hashtbl.replace counts c (n + 1))
        b.Func.instrs)
    t.func.Func.blocks;
  List.filter_map
    (fun c ->
      match Hashtbl.find_opt counts c with
      | Some n -> Some (c, n)
      | None -> None)
    Op.all_classes

let edge_count t =
  Array.fold_left (fun acc d -> acc + Array.length d.intra) 0 t.deps
