(** Scalar optimization passes.

    The paper leans on LLVM's optimizer ("-O3 ... produces a more accurate
    comparison"); these passes keep our IR comparably lean so instruction
    counts are not inflated by builder artifacts. All passes preserve
    semantics and return a fresh, renumbered function. *)

(** Fold pure instructions whose operands are all immediates and whose
    destination register has a single static definition, propagating the
    constant into every use. *)
val constant_fold : Mosaic_ir.Func.t -> Mosaic_ir.Func.t

(** Remove pure instructions whose result register is never read. Memory,
    communication, accelerator and terminator instructions are never
    removed. *)
val dead_code_elim : Mosaic_ir.Func.t -> Mosaic_ir.Func.t

(** Remove register-move instructions ([select true v v]) whose destination
    has a single static definition, forwarding the source operand. Loop
    phis (multi-def registers) are kept. *)
val copy_propagate : Mosaic_ir.Func.t -> Mosaic_ir.Func.t

(** Block-local common-subexpression elimination: a pure instruction whose
    (operator, operand-versions) was already computed in the block by a
    single-definition register reuses that result, when its own result is
    single-definition and only consumed later in the same block. *)
val common_subexpr_elim : Mosaic_ir.Func.t -> Mosaic_ir.Func.t

(** Run all passes to a (bounded) fixpoint. *)
val optimize : Mosaic_ir.Func.t -> Mosaic_ir.Func.t

(** Static instruction count, for pass-effect reporting. *)
val size : Mosaic_ir.Func.t -> int
