(** Decoupled Access/Execute program slicing (the DeSC compiler pass of
    §VII-A).

    [slice] splits a kernel into an access slice (all memory accesses,
    address computation and control flow) and an execute slice (value
    computation plus duplicated control flow). Loads whose values the
    execute slice needs are forwarded over the load channel ([send] right
    after the load / the load becomes [recv] on the execute side); stores of
    computed values travel the other way over the store channel.

    Both slices are SPMD kernels meant to run as pairs on a [2T]-tile
    system: tiles [0..T-1] run the access slice, tiles [T..2T-1] the execute
    slice; each slice rebinds [tid]/[ntiles] to its worker id in [0..T-1] so
    work division matches the original kernel. *)

type info = {
  access : Mosaic_ir.Func.t;  (** named [<kernel>_access] *)
  execute : Mosaic_ir.Func.t;  (** named [<kernel>_execute] *)
  sent_loads : int;  (** static loads forwarded to the execute slice *)
  routed_stores : int;  (** static stores whose value comes from execute *)
  duplicated : int;  (** static pure instructions present in both slices *)
}

(** Raises [Invalid_argument] if the kernel already contains send/recv or
    accelerator instructions. The slices are registered in no program;
    callers add them where needed. *)
val slice :
  ?load_chan:int -> ?store_chan:int -> Mosaic_ir.Func.t -> info
