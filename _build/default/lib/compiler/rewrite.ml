open Mosaic_ir

let renumber ~name ~nparams ~nregs blocks =
  let next = ref 0 in
  let rebuilt =
    Array.mapi
      (fun bid instrs ->
        let instrs =
          List.map
            (fun (i : Instr.t) ->
              let id = !next in
              incr next;
              { i with Instr.id })
            instrs
        in
        { Func.bid; instrs = Array.of_list instrs })
      blocks
  in
  Func.make ~name ~nparams ~nregs ~blocks:rebuilt

let map_operands f (i : Instr.t) =
  { i with Instr.args = Array.map f i.Instr.args }

let count_over f ~per_instr =
  let counts = Array.make (Stdlib.max f.Func.nregs 1) 0 in
  Array.iter
    (fun (b : Func.block) -> Array.iter (per_instr counts) b.Func.instrs)
    f.Func.blocks;
  counts

let def_counts f =
  count_over f ~per_instr:(fun counts (i : Instr.t) ->
      match i.Instr.dst with
      | Some d -> counts.(d) <- counts.(d) + 1
      | None -> ())

let use_counts f =
  count_over f ~per_instr:(fun counts (i : Instr.t) ->
      Array.iter
        (fun operand ->
          match operand with
          | Instr.Reg r -> counts.(r) <- counts.(r) + 1
          | Instr.Imm _ | Instr.Glob _ | Instr.Tid | Instr.Ntiles -> ())
        i.Instr.args)
