(** Static Data-Dependence Graph generator.

    The paper's DDG Generator runs LLVM passes to capture static
    inter-instruction dependencies. Here we compute, for every static
    instruction, its same-block register producers (intra-DBB edges) and the
    registers whose reaching definition lies outside the block (cross-DBB
    edges, which tile models resolve dynamically with a last-writer map, the
    analogue of renaming phi inputs at DBB launch). *)

type node_deps = {
  intra : int array;
      (** function-wide ids of same-block instructions this one depends on *)
  extern_regs : int array;
      (** registers read whose defining instruction is outside the block *)
}

type t = {
  func : Mosaic_ir.Func.t;
  deps : node_deps array;  (** indexed by static instruction id *)
}

val build : Mosaic_ir.Func.t -> t

(** Per-class static instruction histogram (for reports). *)
val class_histogram : t -> (Mosaic_ir.Op.op_class * int) list

(** Total static dependence edges (intra-block). *)
val edge_count : t -> int
