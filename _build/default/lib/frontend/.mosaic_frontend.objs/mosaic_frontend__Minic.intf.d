lib/frontend/minic.mli: Mosaic_ir
