lib/frontend/minic.ml: Builder Format Hashtbl In_channel Instr Int64 List Mosaic_ir Op Program String Validate Value
