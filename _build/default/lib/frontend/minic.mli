(** MiniC: a small C-flavoured kernel language compiled to the MosaicSim IR.

    The paper's front-end story is that LLVM lets many languages feed the
    simulator (C/C++ via Clang, Python via Numba, Keras). This module is the
    reproduction's human-writable front-end on top of the builder DSL:

    {v
    global data[1024] : f32;

    kernel scale(n) {
      var lo = tid * (n / ntiles);
      var hi = lo + (n / ntiles);
      for (i = lo; i < hi; i = i + 1) {
        data[i] = data[i] * 1.5 + 1.0;
      }
    }
    v}

    Language summary:
    - globals: [global name[elems] : f32|i32|f64|i64;]
    - kernels: [kernel name(p1, p2, ...) { ... }] — parameters are integers
    - statements: [var x = e;], [x = e;], [arr[e] = e;],
      [atomic arr[e] += e;] (also [min=], [max=]),
      [if (e) {..} else {..}], [while (e) {..}],
      [for (i = e; e; i = e) {..}], [send(chan, dst, e);],
      [x = recv(chan);], [barrier;] is not built in (use atomics)
    - expressions: integer and float arithmetic [+ - * / %], comparisons,
      [&&]/[||] (strict), unary [-] and [!], array loads [arr[e]],
      [tid], [ntiles], calls [sqrt sin cos exp log fabs floor pow atan2],
      [float(e)] and [int(e)] casts, parentheses
    - typing: [i32]/[i64] arrays and integer literals are integers; [f32]/
      [f64] arrays and literals with a point are floats; integers promote
      to float implicitly where a float is expected; comparisons yield
      integers.

    Errors are reported with line numbers. *)

exception Error of { line : int; message : string }

(** Compile a MiniC source into a fresh validated program. *)
val compile : string -> Mosaic_ir.Program.t

(** Compile from a file path. *)
val compile_file : string -> Mosaic_ir.Program.t
