open Mosaic_ir
module B = Builder

exception Error of { line : int; message : string }

let fail ~line fmt =
  Format.kasprintf (fun message -> raise (Error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | PUNCT of string

type lexed = { tok : token; line : int }

let punctuation2 = [ "=="; "!="; "<="; ">="; "&&"; "||"; "+=" ]

let is_digit c = c >= '0' && c <= '9'

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'

let lex src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = out := { tok; line = !line } :: !out in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && (is_digit src.[!i] || src.[!i] = '.') do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      if String.contains text '.' then
        match float_of_string_opt text with
        | Some f -> push (FLOAT f)
        | None -> fail ~line:!line "bad float literal %s" text
      else
        match Int64.of_string_opt text with
        | Some v -> push (INT v)
        | None -> fail ~line:!line "bad integer literal %s" text
    end
    else if is_ident_char c && not (is_digit c) then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (IDENT (String.sub src start (!i - start)))
    end
    else begin
      let two =
        if !i + 1 < n then String.sub src !i 2 else ""
      in
      if List.mem two punctuation2 then begin
        push (PUNCT two);
        i := !i + 2
      end
      else begin
        push (PUNCT (String.make 1 c));
        incr i
      end
    end
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* AST                                                                 *)
(* ------------------------------------------------------------------ *)

type ty = I | F

type expr =
  | E_int of int64
  | E_float of float
  | E_var of string
  | E_tid
  | E_ntiles
  | E_bin of string * expr * expr
  | E_neg of expr
  | E_not of expr
  | E_load of string * expr
  | E_call of string * expr list
  | E_cast of ty * expr
  | E_recv of int

type stmt = int * stmt_kind  (* source line, kind *)

and stmt_kind =
  | S_decl of string * expr
  | S_assign of string * expr
  | S_store of string * expr * expr
  | S_atomic of Op.rmw * string * expr * expr
  | S_if of expr * stmt list * stmt list
  | S_while of expr * stmt list
  | S_for of string * expr * expr * (string * expr) * stmt list
  | S_send of int * expr * expr

type gdecl = { gname : string; gelems : int; gty : ty; gsize : int }

type kernel = { kname : string; kparams : string list; kbody : stmt list }

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type parser_state = { mutable toks : lexed list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t


let advance st =
  match st.toks with
  | [] -> fail ~line:0 "unexpected end of input"
  | t :: rest ->
      st.toks <- rest;
      t

let expect_punct st p =
  let t = advance st in
  match t.tok with
  | PUNCT q when q = p -> ()
  | _ -> fail ~line:t.line "expected '%s'" p

let expect_ident st =
  let t = advance st in
  match t.tok with
  | IDENT s -> s
  | _ -> fail ~line:t.line "expected identifier"

let expect_int st =
  let t = advance st in
  match t.tok with
  | INT v -> Int64.to_int v
  | _ -> fail ~line:t.line "expected integer literal"

let accept_punct st p =
  match peek st with
  | Some { tok = PUNCT q; _ } when q = p ->
      ignore (advance st);
      true
  | _ -> false

let math_calls =
  [ "sqrt"; "sin"; "cos"; "exp"; "log"; "fabs"; "floor"; "pow"; "atan2" ]

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while accept_punct st "||" do
    lhs := E_bin ("||", !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_cmp st) in
  while accept_punct st "&&" do
    lhs := E_bin ("&&", !lhs, parse_cmp st)
  done;
  !lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    List.find_opt (accept_punct st) [ "=="; "!="; "<="; ">="; "<"; ">" ]
  in
  match op with
  | Some op -> E_bin (op, lhs, parse_add st)
  | None -> lhs

and parse_add st =
  let lhs = ref (parse_mul st) in
  let rec loop () =
    if accept_punct st "+" then begin
      lhs := E_bin ("+", !lhs, parse_mul st);
      loop ()
    end
    else if accept_punct st "-" then begin
      lhs := E_bin ("-", !lhs, parse_mul st);
      loop ()
    end
  in
  loop ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    if accept_punct st "*" then begin
      lhs := E_bin ("*", !lhs, parse_unary st);
      loop ()
    end
    else if accept_punct st "/" then begin
      lhs := E_bin ("/", !lhs, parse_unary st);
      loop ()
    end
    else if accept_punct st "%" then begin
      lhs := E_bin ("%", !lhs, parse_unary st);
      loop ()
    end
  in
  loop ();
  !lhs

and parse_unary st =
  if accept_punct st "-" then E_neg (parse_unary st)
  else if accept_punct st "!" then E_not (parse_unary st)
  else parse_primary st

and parse_primary st =
  let t = advance st in
  match t.tok with
  | INT v -> E_int v
  | FLOAT f -> E_float f
  | PUNCT "(" ->
      let e = parse_expr st in
      expect_punct st ")";
      e
  | IDENT "tid" -> E_tid
  | IDENT "ntiles" -> E_ntiles
  | IDENT "float" ->
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      E_cast (F, e)
  | IDENT "int" ->
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      E_cast (I, e)
  | IDENT "recv" ->
      expect_punct st "(";
      let chan = expect_int st in
      expect_punct st ")";
      E_recv chan
  | IDENT name when List.mem name math_calls ->
      expect_punct st "(";
      let args = ref [ parse_expr st ] in
      while accept_punct st "," do
        args := parse_expr st :: !args
      done;
      expect_punct st ")";
      E_call (name, List.rev !args)
  | IDENT name ->
      if accept_punct st "[" then begin
        let idx = parse_expr st in
        expect_punct st "]";
        E_load (name, idx)
      end
      else E_var name
  | _ -> fail ~line:t.line "unexpected token in expression"

let rec parse_stmt st =
  let t = advance st in
  let at kind = (t.line, kind) in
  match t.tok with
  | IDENT "var" ->
      let name = expect_ident st in
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      at (S_decl (name, e))
  | IDENT "if" ->
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      let then_b = parse_block st in
      let else_b =
        match peek st with
        | Some { tok = IDENT "else"; _ } ->
            ignore (advance st);
            parse_block st
        | _ -> []
      in
      at (S_if (cond, then_b, else_b))
  | IDENT "while" ->
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      at (S_while (cond, parse_block st))
  | IDENT "for" ->
      expect_punct st "(";
      let iv = expect_ident st in
      expect_punct st "=";
      let init = parse_expr st in
      expect_punct st ";";
      let cond = parse_expr st in
      expect_punct st ";";
      let uv = expect_ident st in
      expect_punct st "=";
      let update = parse_expr st in
      expect_punct st ")";
      at (S_for (iv, init, cond, (uv, update), parse_block st))
  | IDENT "send" ->
      expect_punct st "(";
      let chan = expect_int st in
      expect_punct st ",";
      let dst = parse_expr st in
      expect_punct st ",";
      let v = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      at (S_send (chan, dst, v))
  | IDENT "atomic" -> (
      let name = expect_ident st in
      expect_punct st "[";
      let idx = parse_expr st in
      expect_punct st "]";
      let t2 = advance st in
      let rmw =
        match t2.tok with
        | PUNCT "+=" -> Op.Rmw_add
        | IDENT "min" ->
            expect_punct st "=";
            Op.Rmw_min
        | IDENT "max" ->
            expect_punct st "=";
            Op.Rmw_max
        | _ -> fail ~line:t2.line "expected +=, min= or max= after atomic"
      in
      let v = parse_expr st in
      expect_punct st ";";
      match rmw with
      | _ -> at (S_atomic (rmw, name, idx, v)))
  | IDENT name ->
      if accept_punct st "[" then begin
        let idx = parse_expr st in
        expect_punct st "]";
        expect_punct st "=";
        let v = parse_expr st in
        expect_punct st ";";
        at (S_store (name, idx, v))
      end
      else begin
        expect_punct st "=";
        let e = parse_expr st in
        expect_punct st ";";
        at (S_assign (name, e))
      end
  | _ -> fail ~line:t.line "unexpected token at statement start"

and parse_block st =
  expect_punct st "{";
  let stmts = ref [] in
  while not (accept_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

let parse_ty st =
  let t = advance st in
  match t.tok with
  | IDENT "f32" -> (F, 4)
  | IDENT "f64" -> (F, 8)
  | IDENT "i32" -> (I, 4)
  | IDENT "i64" -> (I, 8)
  | _ -> fail ~line:t.line "expected a type (f32|f64|i32|i64)"

let parse_program src =
  let st = { toks = lex src } in
  let globals = ref [] and kernels = ref [] in
  while peek st <> None do
    let t = advance st in
    match t.tok with
    | IDENT "global" ->
        let gname = expect_ident st in
        expect_punct st "[";
        let gelems = expect_int st in
        expect_punct st "]";
        expect_punct st ":";
        let gty, gsize = parse_ty st in
        expect_punct st ";";
        globals := { gname; gelems; gty; gsize } :: !globals
    | IDENT "kernel" ->
        let kname = expect_ident st in
        expect_punct st "(";
        let params = ref [] in
        (match peek st with
        | Some { tok = PUNCT ")"; _ } -> ()
        | _ ->
            params := [ expect_ident st ];
            while accept_punct st "," do
              params := expect_ident st :: !params
            done);
        expect_punct st ")";
        let body = parse_block st in
        kernels :=
          { kname; kparams = List.rev !params; kbody = body } :: !kernels
    | _ -> fail ~line:t.line "expected 'global' or 'kernel'"
  done;
  (List.rev !globals, List.rev !kernels)

(* ------------------------------------------------------------------ *)
(* Typed code generation                                               *)
(* ------------------------------------------------------------------ *)

type env = {
  prog : Program.t;
  gtypes : (string, ty * Program.global) Hashtbl.t;
  mutable vars : (string * (Instr.operand * ty)) list;
}

let lookup_var env ~line name =
  match List.assoc_opt name env.vars with
  | Some v -> v
  | None -> fail ~line "unknown variable %s" name

let lookup_global env ~line name =
  match Hashtbl.find_opt env.gtypes name with
  | Some g -> g
  | None -> fail ~line "unknown array %s" name

(* promote an integer operand to float *)
let to_float b (operand, ty) =
  match ty with
  | F -> operand
  | I -> (
      match operand with
      | Instr.Imm (Value.Int v) -> B.fimm (Int64.to_float v)
      | _ -> B.sitofp b operand)

let math_of_name = function
  | "sqrt" -> Op.Sqrt
  | "sin" -> Op.Sin
  | "cos" -> Op.Cos
  | "exp" -> Op.Exp
  | "log" -> Op.Log
  | "fabs" -> Op.Fabs
  | "floor" -> Op.Floor
  | "pow" -> Op.Pow
  | "atan2" -> Op.Atan2
  | s -> invalid_arg s

let rec gen_expr env b ~line e : Instr.operand * ty =
  match e with
  | E_int v -> (Instr.Imm (Value.Int v), I)
  | E_float f -> (B.fimm f, F)
  | E_tid -> (B.tid, I)
  | E_ntiles -> (B.ntiles, I)
  | E_var name -> lookup_var env ~line name
  | E_cast (F, e) -> (to_float b (gen_expr env b ~line e), F)
  | E_cast (I, e) -> (
      let v, ty = gen_expr env b ~line e in
      match ty with I -> (v, I) | F -> (B.fptosi b v, I))
  | E_neg e -> (
      let v, ty = gen_expr env b ~line e in
      match ty with
      | I -> (B.sub b (B.imm 0) v, I)
      | F -> (B.fsub b (B.fimm 0.0) v, F))
  | E_not e ->
      let v, ty = gen_expr env b ~line e in
      if ty = F then fail ~line "'!' needs an integer";
      (B.icmp b Op.Eq v (B.imm 0), I)
  | E_load (name, idx) ->
      let ty, g = lookup_global env ~line name in
      let iv, ity = gen_expr env b ~line idx in
      if ity = F then fail ~line "array index must be an integer";
      (B.load b ~size:g.Program.elem_size (B.elem b g iv), ty)
  | E_recv chan -> (B.recv b ~chan, F)
  | E_call (name, args) ->
      let vals =
        List.map (fun a -> to_float b (gen_expr env b ~line a)) args
      in
      let m = math_of_name name in
      (match (m, vals) with
      | (Op.Pow | Op.Atan2), [ x; y ] -> (B.math2 b m x y, F)
      | (Op.Pow | Op.Atan2), _ -> fail ~line "%s expects two arguments" name
      | _, [ x ] -> (B.math1 b m x, F)
      | _, _ -> fail ~line "%s expects one argument" name)
  | E_bin (op, l, r) -> gen_bin env b ~line op l r

and gen_bin env b ~line op l r =
  let lv, lt = gen_expr env b ~line l in
  let rv, rt = gen_expr env b ~line r in
  let arith iop fop =
    if lt = F || rt = F then
      (fop (to_float b (lv, lt)) (to_float b (rv, rt)), F)
    else (iop lv rv, I)
  in
  match op with
  | "+" -> arith (B.add b) (B.fadd b)
  | "-" -> arith (B.sub b) (B.fsub b)
  | "*" -> arith (B.mul b) (B.fmul b)
  | "/" -> arith (B.sdiv b) (B.fdiv b)
  | "%" ->
      if lt = F || rt = F then fail ~line "'%%' needs integers";
      (B.srem b lv rv, I)
  | "&&" | "||" ->
      if lt = F || rt = F then fail ~line "'%s' needs integers" op;
      let lb = B.icmp b Op.Ne lv (B.imm 0) in
      let rb = B.icmp b Op.Ne rv (B.imm 0) in
      ((if op = "&&" then B.and_ b lb rb else B.or_ b lb rb), I)
  | "==" | "!=" | "<" | "<=" | ">" | ">=" ->
      let pred =
        match op with
        | "==" -> Op.Eq
        | "!=" -> Op.Ne
        | "<" -> Op.Lt
        | "<=" -> Op.Le
        | ">" -> Op.Gt
        | _ -> Op.Ge
      in
      if lt = F || rt = F then
        (B.fcmp b pred (to_float b (lv, lt)) (to_float b (rv, rt)), I)
      else (B.icmp b pred lv rv, I)
  | _ -> fail ~line "unknown operator %s" op

(* Coerce a value to the target type; integers promote to float, floats do
   not silently narrow. *)
let coerce env b ~line ~target (v, ty) =
  ignore env;
  match (target, ty) with
  | F, I -> to_float b (v, ty)
  | I, F -> fail ~line "cannot store a float where an integer is expected"
  | _ -> v

let rec gen_stmt env b ((line, kind) : stmt) =
  match kind with
  | S_decl (name, e) ->
      let v, ty = gen_expr env b ~line e in
      let var = B.var b v in
      env.vars <- (name, (var, ty)) :: env.vars
  | S_assign (name, e) ->
      let var, vty = lookup_var env ~line name in
      let v = coerce env b ~line ~target:vty (gen_expr env b ~line e) in
      B.assign b ~var v
  | S_store (name, idx, e) ->
      let ty, g = lookup_global env ~line name in
      let iv, ity = gen_expr env b ~line idx in
      if ity = F then fail ~line "array index must be an integer";
      let v = coerce env b ~line ~target:ty (gen_expr env b ~line e) in
      B.store b ~size:g.Program.elem_size ~addr:(B.elem b g iv) v
  | S_atomic (rmw, name, idx, e) ->
      let ty, g = lookup_global env ~line name in
      let iv, ity = gen_expr env b ~line idx in
      if ity = F then fail ~line "array index must be an integer";
      let v = coerce env b ~line ~target:ty (gen_expr env b ~line e) in
      ignore (B.atomic b rmw ~size:g.Program.elem_size ~addr:(B.elem b g iv) v)
  | S_send (chan, dst, e) ->
      let dv, dty = gen_expr env b ~line dst in
      if dty = F then fail ~line "send destination must be an integer";
      let v, _ = gen_expr env b ~line e in
      B.send b ~chan ~dst:dv v
  | S_if (cond, then_b, else_b) ->
      let cv, _ = gen_expr env b ~line cond in
      let saved = env.vars in
      B.if_else b cv
        (fun () ->
          List.iter (gen_stmt env b) then_b;
          env.vars <- saved)
        (fun () ->
          List.iter (gen_stmt env b) else_b;
          env.vars <- saved)
  | S_while (cond, body) ->
      let saved = env.vars in
      B.while_ b
        ~cond:(fun () -> fst (gen_expr env b ~line cond))
        (fun () ->
          List.iter (gen_stmt env b) body;
          env.vars <- saved)
  | S_for (iv_name, init, cond, (uv_name, update), body) ->
      let v, ty = gen_expr env b ~line init in
      let iv = B.var b v in
      let saved = env.vars in
      env.vars <- (iv_name, (iv, ty)) :: env.vars;
      B.while_ b
        ~cond:(fun () -> fst (gen_expr env b ~line cond))
        (fun () ->
          let inner = env.vars in
          List.iter (gen_stmt env b) body;
          env.vars <- inner;
          let uvar, uty = lookup_var env ~line uv_name in
          let u = coerce env b ~line ~target:uty (gen_expr env b ~line update) in
          B.assign b ~var:uvar u);
      env.vars <- saved

let compile src =
  let globals, kernels = parse_program src in
  if kernels = [] then fail ~line:0 "no kernels in source";
  let prog = Program.create () in
  let gtypes = Hashtbl.create 8 in
  List.iter
    (fun g ->
      let pg = Program.alloc prog g.gname ~elems:g.gelems ~elem_size:g.gsize in
      Hashtbl.replace gtypes g.gname (g.gty, pg))
    globals;
  List.iter
    (fun k ->
      let nparams = List.length k.kparams in
      ignore
        (B.define prog k.kname ~nparams (fun b ->
             let env = { prog; gtypes; vars = [] } in
             List.iteri
               (fun i p -> env.vars <- (p, (B.param b i, I)) :: env.vars)
               k.kparams;
             List.iter (gen_stmt env b) k.kbody;
             B.ret b ())))
    kernels;
  Validate.check_exn prog;
  prog

let compile_file path =
  compile (In_channel.with_open_text path In_channel.input_all)
