open Mosaic_ir
module Trace = Mosaic_trace.Trace
module Hierarchy = Mosaic_memory.Hierarchy

type config = {
  issue_width : float;
  throughput : (Op.op_class * float) list;
  math_cycles : float;
  atomic_cycles : float;
  mispredict_penalty : float;
  mispredict_rate : float;
  mlp : float;
  l1_latency : int;
}

let default_config =
  {
    issue_width = 4.0;
    throughput =
      [
        (Op.C_ialu, 0.17);
        (Op.C_imul, 1.0);
        (Op.C_idiv, 6.0);
        (* Packed SSE/AVX + FMA: far below one cycle per scalar IR flop. *)
        (Op.C_falu, 0.15);
        (Op.C_fmul, 0.15);
        (Op.C_fdiv, 6.0);
        (Op.C_load, 0.30);
        (Op.C_store, 0.42);
        (Op.C_branch, 0.25);
      ];
    math_cycles = 32.0;
    atomic_cycles = 8.0;
    mispredict_penalty = 14.0;
    mispredict_rate = 0.4;
    mlp = 8.0;
    l1_latency = 4;
  }

type result = { cycles : int; x86_instrs : int }

(* Whether the instruction survives x86 instruction selection as its own
   instruction. GEPs fold into addressing modes; compares fuse with the
   following branch; select-moves (our phi stand-ins) die in renaming. *)
let counted (i : Instr.t) =
  match i.Instr.op with
  | Op.Gep _ -> false
  | Op.Icmp _ | Op.Fcmp _ -> false
  | Op.Select -> (
      (* A move [select true v v] disappears; a real select is a cmov. *)
      match i.Instr.args.(0) with
      | Instr.Imm c -> not (Value.to_bool c)
      | _ -> true)
  | _ -> true

(* Static taken-branch heuristic shared with the simulated predictor; the
   dynamic predictor is modeled as catching most of its misses. *)
let static_predict ~bid (term : Instr.t) =
  match term.Instr.op with
  | Op.Br target -> Some target
  | Op.Cond_br (taken, not_taken) ->
      if not_taken <= bid && taken > bid then Some not_taken else Some taken
  | _ -> None

type tile_walk = {
  func : Func.t;
  cursor : Trace.Cursor.cursor;
  mutable time : float;
  mutable instrs : int;
  mutable heuristic_misses : int;
  mutable done_ : bool;
}

let run ?(config = default_config) ~program ~trace ~hierarchy () =
  let ntiles = trace.Trace.ntiles in
  let hier = Hierarchy.create ~ntiles hierarchy in
  let tiles =
    Array.map
      (fun (tt : Trace.tile_trace) ->
        {
          func = Program.func_exn program tt.Trace.kernel;
          cursor = Trace.Cursor.create tt;
          time = 0.0;
          instrs = 0;
          heuristic_misses = 0;
          done_ = false;
        })
      trace.Trace.tiles
  in
  let throughput cls =
    match List.assoc_opt cls config.throughput with
    | Some v -> v
    | None -> 1.0
  in
  (* Lock-prefixed operations serialize across cores. *)
  let atomic_free_at = ref 0.0 in
  let step_block tile_id w =
    match Trace.Cursor.next_block w.cursor with
    | None -> w.done_ <- true
    | Some bid ->
        let blk = Func.block w.func bid in
        Array.iter
          (fun (i : Instr.t) ->
            if counted i then begin
              w.instrs <- w.instrs + 1;
              let cls = Op.classify i.Instr.op in
              (match i.Instr.op with
              | Op.Load _ | Op.Store _ | Op.Load_send _ ->
                  let addr =
                    Trace.Cursor.next_addr w.cursor ~instr_id:i.Instr.id
                  in
                  let now = int_of_float w.time in
                  let is_write =
                    match i.Instr.op with Op.Store _ -> true | _ -> false
                  in
                  let completion =
                    Hierarchy.access hier ~tile:tile_id ~cycle:now ~addr
                      ~is_write
                  in
                  let latency = completion - now in
                  w.time <- w.time +. throughput cls;
                  if latency > config.l1_latency then
                    w.time <-
                      w.time
                      +. (float_of_int (latency - config.l1_latency)
                          /. config.mlp)
              | Op.Atomic_rmw _ ->
                  let addr =
                    Trace.Cursor.next_addr w.cursor ~instr_id:i.Instr.id
                  in
                  let now = int_of_float w.time in
                  let completion =
                    Hierarchy.access hier ~tile:tile_id ~cycle:now ~addr
                      ~is_write:true
                  in
                  let latency = float_of_int (completion - now) in
                  let start = Float.max w.time !atomic_free_at in
                  (* The locked bus/line is held for part of the cost; the
                     rest overlaps locally. *)
                  atomic_free_at := start +. (config.atomic_cycles /. 2.0);
                  w.time <-
                    start +. config.atomic_cycles +. (latency /. config.mlp)
              | Op.Math _ -> w.time <- w.time +. config.math_cycles
              | Op.Br _ | Op.Cond_br _ | Op.Ret ->
                  w.time <- w.time +. throughput Op.C_branch;
                  (match
                     ( static_predict ~bid i,
                       Trace.Cursor.peek_block w.cursor 0 )
                   with
                  | Some predicted, Some actual when predicted <> actual ->
                      w.heuristic_misses <- w.heuristic_misses + 1;
                      (* Deterministic thinning: the dynamic predictor
                         catches (1 - rate) of the heuristic's misses. *)
                      let period =
                        Stdlib.max 1
                          (int_of_float (1.0 /. config.mispredict_rate))
                      in
                      if w.heuristic_misses mod period = 0 then
                        w.time <- w.time +. config.mispredict_penalty
                  | _ -> ())
              | _ -> w.time <- w.time +. throughput cls)
            end
            else begin
              (* Fused instructions still pop their trace streams. *)
              match i.Instr.op with
              | Op.Load _ | Op.Store _ | Op.Atomic_rmw _ ->
                  ignore (Trace.Cursor.next_addr w.cursor ~instr_id:i.Instr.id)
              | _ -> ()
            end)
          blk.Func.instrs
  in
  (* Interleave tiles by advancing whichever is earliest in time, one basic
     block at a time, so shared-hierarchy contention is seen in order. *)
  let rec loop () =
    let earliest = ref None in
    Array.iteri
      (fun idx w ->
        if not w.done_ then
          match !earliest with
          | None -> earliest := Some idx
          | Some e -> if w.time < tiles.(e).time then earliest := Some idx)
      tiles;
    match !earliest with
    | None -> ()
    | Some idx ->
        step_block idx tiles.(idx);
        loop ()
  in
  loop ();
  let cycles =
    Array.fold_left (fun acc w -> Float.max acc w.time) 0.0 tiles
  in
  let instrs = Array.fold_left (fun acc w -> acc + w.instrs) 0 tiles in
  { cycles = int_of_float cycles; x86_instrs = instrs }
