lib/baseline/x86_model.mli: Mosaic_ir Mosaic_memory Mosaic_trace
