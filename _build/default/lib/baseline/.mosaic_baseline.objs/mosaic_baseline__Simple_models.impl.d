lib/baseline/simple_models.ml: Array Float Func Instr Mosaic_ir Mosaic_memory Mosaic_trace Op Program Stdlib
