lib/baseline/x86_model.ml: Array Float Func Instr List Mosaic_ir Mosaic_memory Mosaic_trace Op Program Stdlib Value
