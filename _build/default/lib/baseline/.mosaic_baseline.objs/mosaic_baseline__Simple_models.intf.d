lib/baseline/simple_models.mli: Mosaic_ir Mosaic_memory Mosaic_trace
