(** The high-level simulation strawmen the paper's introduction argues
    against: "1-IPC models or interval simulation ... do not accurately
    capture critical memory bottlenecks of many modern data-intensive
    applications".

    Both replay MosaicSim traces:
    - [one_ipc] charges one cycle per dynamic instruction, ignoring memory
      entirely;
    - [interval] is a Sniper-flavoured interval model: instructions stream
      at the issue width, punctuated by miss intervals from a cache model
      but with no dependence tracking inside an interval.

    The motivation benchmark compares their runtime estimates with
    MosaicSim's against the x86 reference. *)

type result = { cycles : int }

val one_ipc : trace:Mosaic_trace.Trace.t -> result

val interval :
  program:Mosaic_ir.Program.t ->
  trace:Mosaic_trace.Trace.t ->
  hierarchy:Mosaic_memory.Hierarchy.config ->
  ?issue_width:float ->
  unit ->
  result
