open Mosaic_ir
module Trace = Mosaic_trace.Trace
module Hierarchy = Mosaic_memory.Hierarchy

type result = { cycles : int }

let one_ipc ~trace =
  (* Parallel tiles at one instruction per cycle: the slowest tile wins. *)
  let cycles =
    Array.fold_left
      (fun acc (tt : Trace.tile_trace) -> Stdlib.max acc tt.Trace.dyn_instrs)
      0 trace.Trace.tiles
  in
  { cycles }

let interval ~program ~trace ~hierarchy ?(issue_width = 4.0) () =
  let hier = Hierarchy.create ~ntiles:trace.Trace.ntiles hierarchy in
  let l1_latency = hierarchy.Hierarchy.l1.Mosaic_memory.Cache.latency in
  let finish =
    Array.mapi
      (fun tile (tt : Trace.tile_trace) ->
        let func = Program.func_exn program tt.Trace.kernel in
        let cursor = Trace.Cursor.create tt in
        let time = ref 0.0 in
        let rec run () =
          match Trace.Cursor.next_block cursor with
          | None -> ()
          | Some bid ->
              let blk = Func.block func bid in
              Array.iter
                (fun (i : Instr.t) ->
                  (* steady-state dispatch *)
                  time := !time +. (1.0 /. issue_width);
                  match Op.mem_size i.Instr.op with
                  | Some _ ->
                      let addr =
                        Trace.Cursor.next_addr cursor ~instr_id:i.Instr.id
                      in
                      let now = int_of_float !time in
                      let is_write =
                        match i.Instr.op with
                        | Op.Load _ | Op.Load_send _ -> false
                        | _ -> true
                      in
                      let completion =
                        Hierarchy.access hier ~tile ~cycle:now ~addr ~is_write
                      in
                      (* interval simulation: a miss opens an interval that
                         stalls dispatch for its full latency *)
                      let latency = completion - now in
                      if latency > l1_latency then
                        time := !time +. float_of_int (latency - l1_latency)
                  | None -> ())
                blk.Func.instrs;
              run ()
        in
        run ();
        !time)
      trace.Trace.tiles
  in
  { cycles = int_of_float (Array.fold_left Float.max 0.0 finish) }
