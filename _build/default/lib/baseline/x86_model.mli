(** Reference x86 timing model — the "real machine" of the accuracy and
    scaling experiments (Figs 5-9).

    Substitution note (see DESIGN.md): the paper compares MosaicSim's
    LLVM-IR-grain timing against VTune measurements on a Xeon. Offline we
    substitute an independent model that replays the same traces with the
    ISA-mapping differences the paper blames for its accuracy gaps:
    - address computations fuse into memory operands (GEPs are free),
    - compares fuse with branches, register moves vanish under renaming,
    - SIMD + FMA give packed FP arithmetic much higher throughput than
      one-IR-instruction-per-cycle accounting,
    - transcendental math becomes expensive serial libm calls,
    - atomics carry lock-prefix cost and serialize across cores,
    - aggressive dynamic prediction and deep OoO overlap memory latency
      (an MLP divisor on miss stalls).

    Threads interleave over a shared memory hierarchy, so bandwidth
    contention shapes multi-threaded scaling. *)

type config = {
  issue_width : float;
  throughput : (Mosaic_ir.Op.op_class * float) list;
      (** amortized cycles per counted instruction, by class *)
  math_cycles : float;  (** serial libm call *)
  atomic_cycles : float;  (** lock-prefixed RMW, serializing across cores *)
  mispredict_penalty : float;
  mispredict_rate : float;
      (** fraction of static-heuristic misses the dynamic predictor also
          misses *)
  mlp : float;  (** memory-level-parallelism divisor on miss stalls *)
  l1_latency : int;
}

val default_config : config

type result = {
  cycles : int;
  x86_instrs : int;  (** instructions after fusion (GEPs, cmps, moves gone) *)
}

(** Replay [trace] under the x86 cost model over a fresh hierarchy built
    from [hierarchy]. *)
val run :
  ?config:config ->
  program:Mosaic_ir.Program.t ->
  trace:Mosaic_trace.Trace.t ->
  hierarchy:Mosaic_memory.Hierarchy.config ->
  unit ->
  result
