open Accel_model

(* Distribute [total] across [n] chunks proportionally to chunk byte sizes,
   assigning the remainder to the final chunk. *)
let split_proportional total sizes total_bytes =
  let n = Array.length sizes in
  let out = Array.make n 0 in
  let assigned = ref 0 in
  for i = 0 to n - 2 do
    out.(i) <- total * sizes.(i) / Stdlib.max 1 total_bytes;
    assigned := !assigned + out.(i)
  done;
  out.(n - 1) <- total - !assigned;
  out

let pipeline_cycles sys dp w ~bw ~noc_hop_latency =
  let chunk = Stdlib.max 1 (dp.plm_bytes / 2) in
  let n = Stdlib.max 1 ((w.bytes_in + chunk - 1) / chunk) in
  let sizes =
    Array.init n (fun i ->
        if i < n - 1 then chunk
        else Stdlib.max 1 (w.bytes_in - (chunk * (n - 1))))
  in
  let ops = split_proportional w.ops sizes w.bytes_in in
  let outs = split_proportional w.bytes_out sizes w.bytes_in in
  let noc = sys.noc_hops * noc_hop_latency in
  let burst bytes =
    if bytes <= 0 then 0
    else int_of_float (Float.ceil (float_of_int bytes /. bw)) + noc
  in
  let lf = Array.make n 0 and cf = Array.make n 0 and sf = Array.make n 0 in
  for i = 0 to n - 1 do
    let load_start =
      (* Double buffering: the slot for chunk i frees when chunk i-2 has
         been consumed by compute. *)
      Stdlib.max
        (if i > 0 then lf.(i - 1) else 0)
        (if i > 1 then cf.(i - 2) else 0)
    in
    lf.(i) <- load_start + burst sizes.(i);
    let comp_start = Stdlib.max lf.(i) (if i > 0 then cf.(i - 1) else 0) in
    cf.(i) <-
      comp_start
      + int_of_float
          (Float.ceil (float_of_int ops.(i) /. float_of_int dp.par_lanes));
    let store_start = Stdlib.max cf.(i) (if i > 0 then sf.(i - 1) else 0) in
    sf.(i) <- store_start + burst outs.(i)
  done;
  (* Configuration/flush of the accelerator datapath. *)
  64 + sf.(n - 1)

let rtl_cycles sys dp w =
  pipeline_cycles sys dp w ~bw:sys.mem_bw_bytes_per_cycle
    ~noc_hop_latency:sys.noc_hop_latency

let fpga_cycles sys dp w =
  (* Full-system effects: shared-interconnect contention trims effective
     DMA bandwidth, NoC traversals are longer, and the Linux driver
     invocation costs a fixed overhead (measured below 1% for the paper's
     workloads, which this reproduces for realistic sizes). *)
  let contended_bw = sys.mem_bw_bytes_per_cycle *. 0.90 in
  pipeline_cycles sys dp w ~bw:contended_bw
    ~noc_hop_latency:(sys.noc_hop_latency * 2)
  + (2 * sys.invocation_overhead)
