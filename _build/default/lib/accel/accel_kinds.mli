(** Registry of fixed-function accelerator kinds.

    Each kind maps the parameters of an [Accel] IR instruction to the
    resource demands of the generic model, and (for the kinds used by
    numerically-checked examples) provides the functional behaviour the
    interpreter executes so programs stay correct when work is off-loaded.

    Parameter conventions (sizes first, then array base addresses where the
    functional behaviour needs them):
    - ["gemm"]: m, n, k, \[a, b, c\] — C(mxn) += A(mxk) * B(kxn), f32
    - ["histo"]: n, bins, \[src, hist\] — saturating histogram
    - ["elementwise"]: n, \[a, b, c\] — c\[i\] = a\[i\] + b\[i\]
    - ["conv"]: cin, cout, h, w, k — 2D convolution (timing only)
    - ["dense"]: nin, nout — fully connected layer (timing only)
    - ["relu"], ["batchnorm"]: n — element-wise activations (timing only)
    - ["pool"]: c, h, w, p — pooling (timing only) *)

(** [workload kind params] is the generic-model demand of one invocation.
    Raises [Invalid_argument] for unknown kinds or missing parameters. *)
val workload :
  string -> Mosaic_ir.Value.t array -> Accel_model.workload

val known_kinds : string list

(** Register functional behaviour for ["gemm"], ["histo"] and
    ["elementwise"] on an interpreter instance. *)
val register_functional : Mosaic_trace.Interp.t -> unit
