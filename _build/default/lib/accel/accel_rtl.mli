(** Cycle-level golden references for accelerator validation (§VI-A,
    Fig 10d).

    [rtl_cycles] simulates the load → compute → store pipeline chunk by
    chunk over the double-buffered PLM, with integer burst timing, pipeline
    fill/drain and remainder chunks — the stand-in for SystemC/RTL
    simulation of the HLS-generated design. [fpga_cycles] adds the effects
    full-system FPGA emulation sees on top: Linux driver invocation overhead
    and shared-interconnect contention on DMA. The analytic model is
    validated against both. *)

val rtl_cycles :
  Accel_model.sys_params ->
  Accel_model.design_point ->
  Accel_model.workload ->
  int

val fpga_cycles :
  Accel_model.sys_params ->
  Accel_model.design_point ->
  Accel_model.workload ->
  int
