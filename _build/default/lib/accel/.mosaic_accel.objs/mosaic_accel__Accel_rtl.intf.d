lib/accel/accel_rtl.mli: Accel_model
