lib/accel/accel_model.mli:
