lib/accel/accel_kinds.ml: Accel_model Array Mosaic_ir Mosaic_trace Printf Stdlib Value
