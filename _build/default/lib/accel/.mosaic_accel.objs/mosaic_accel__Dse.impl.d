lib/accel/dse.ml: Accel_model Accel_rtl Float List Mosaic_util Printf Stdlib
