lib/accel/accel_model.ml: Float Stdlib
