lib/accel/accel_rtl.ml: Accel_model Array Float Stdlib
