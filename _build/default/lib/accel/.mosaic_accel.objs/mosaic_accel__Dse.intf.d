lib/accel/dse.mli: Accel_model
