lib/accel/accel_kinds.mli: Accel_model Mosaic_ir Mosaic_trace
