open Mosaic_ir
module Interp = Mosaic_trace.Interp

let elem = 4 (* f32 data *)

let p params i =
  if i >= Array.length params then
    invalid_arg "Accel_kinds: missing parameter";
  Value.to_int params.(i)

let workload kind params =
  let open Accel_model in
  match kind with
  | "gemm" ->
      let m = p params 0 and n = p params 1 and k = p params 2 in
      {
        ops = m * n * k;
        bytes_in = elem * ((m * k) + (k * n));
        bytes_out = elem * m * n;
      }
  | "histo" ->
      let n = p params 0 and bins = p params 1 in
      { ops = n; bytes_in = elem * n; bytes_out = elem * bins }
  | "elementwise" ->
      let n = p params 0 in
      { ops = n; bytes_in = 2 * elem * n; bytes_out = elem * n }
  | "conv" ->
      let cin = p params 0
      and cout = p params 1
      and h = p params 2
      and w = p params 3
      and k = p params 4 in
      {
        ops = h * w * cout * cin * k * k;
        bytes_in = elem * ((h * w * cin) + (cout * cin * k * k));
        bytes_out = elem * h * w * cout;
      }
  | "dense" ->
      let nin = p params 0 and nout = p params 1 in
      {
        ops = nin * nout;
        bytes_in = elem * (nin + (nin * nout));
        bytes_out = elem * nout;
      }
  | "relu" ->
      let n = p params 0 in
      { ops = n; bytes_in = elem * n; bytes_out = elem * n }
  | "batchnorm" ->
      let n = p params 0 in
      { ops = 4 * n; bytes_in = elem * n; bytes_out = elem * n }
  | "pool" ->
      let c = p params 0 and h = p params 1 and w = p params 2 in
      let pwin = p params 3 in
      {
        ops = c * h * w;
        bytes_in = elem * c * h * w;
        bytes_out = elem * c * h * w / Stdlib.max 1 (pwin * pwin);
      }
  | _ -> invalid_arg (Printf.sprintf "Accel_kinds.workload: unknown %s" kind)

let known_kinds =
  [ "gemm"; "histo"; "elementwise"; "conv"; "dense"; "relu"; "batchnorm"; "pool" ]

let fget it addr = Value.to_float (Interp.peek it addr)

(* Functional behaviour only runs when the invocation carries the array
   base addresses; size-only invocations (timing studies) are no-ops. *)
let register_functional it =
  Interp.register_accel it "gemm" (fun it params ->
      if Array.length params >= 6 then begin
      let m = p params 0 and n = p params 1 and k = p params 2 in
      let a = p params 3 and b = p params 4 and c = p params 5 in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let acc = ref (fget it (c + (elem * ((i * n) + j)))) in
          for kk = 0 to k - 1 do
            acc :=
              !acc
              +. fget it (a + (elem * ((i * k) + kk)))
                 *. fget it (b + (elem * ((kk * n) + j)))
          done;
          Interp.poke it (c + (elem * ((i * n) + j))) (Value.of_float !acc)
        done
      done
      end);
  Interp.register_accel it "histo" (fun it params ->
      if Array.length params >= 4 then begin
      let n = p params 0 and bins = p params 1 in
      let src = p params 2 and hist = p params 3 in
      for i = 0 to n - 1 do
        let v = Value.to_int (Interp.peek it (src + (elem * i))) in
        let bin = Stdlib.max 0 (Stdlib.min (bins - 1) v) in
        let addr = hist + (elem * bin) in
        let count = Value.to_int (Interp.peek it addr) in
        (* Saturating histogram, as in the paper's accelerator. *)
        if count < 255 then Interp.poke it addr (Value.of_int (count + 1))
      done
      end);
  Interp.register_accel it "elementwise" (fun it params ->
      if Array.length params >= 4 then begin
      let n = p params 0 in
      let a = p params 1 and b = p params 2 and c = p params 3 in
      for i = 0 to n - 1 do
        let x = fget it (a + (elem * i)) and y = fget it (b + (elem * i)) in
        Interp.poke it (c + (elem * i)) (Value.of_float (x +. y))
      done
      end)
