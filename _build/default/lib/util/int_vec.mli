(** Growable integer vector.

    Dynamic traces record one entry per memory access; an unboxed int vector
    keeps multi-million-access traces cheap. *)

type t

val create : ?initial_capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit

(** [get v i]; raises [Invalid_argument] when out of bounds. *)
val get : t -> int -> int

val to_array : t -> int array
val iter : (int -> unit) -> t -> unit
val clear : t -> unit
