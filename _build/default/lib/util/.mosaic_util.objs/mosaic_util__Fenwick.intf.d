lib/util/fenwick.mli:
