lib/util/fenwick.ml: Array Stdlib
