lib/util/pqueue.mli:
