lib/util/stats.mli:
