lib/util/bounded_queue.ml: List Queue
