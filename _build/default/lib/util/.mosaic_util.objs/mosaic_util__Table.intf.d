lib/util/table.mli:
