lib/util/rng.mli:
