(** Fixed-width text tables for the benchmark harness.

    Every figure and table of the paper is regenerated as a text table, so
    the formatting lives in one place. *)

type align = Left | Right

type column = { header : string; align : align }

val column : ?align:align -> string -> column

(** [render ~columns rows] lays the rows out under the headers with a rule
    line, padding each column to its widest cell. Rows shorter than
    [columns] are padded with empty cells; longer rows are truncated. *)
val render : columns:column list -> string list list -> string

(** [print ~title ~columns rows] renders with a [== title ==] banner to
    stdout. *)
val print : title:string -> columns:column list -> string list list -> unit

(** Format helpers for numeric cells. *)
val fcell : ?decimals:int -> float -> string

val icell : int -> string
