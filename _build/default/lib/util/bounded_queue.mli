(** FIFO queue with an optional capacity bound.

    Models the finite hardware buffers in MosaicSim: inter-tile communication
    buffers (DAE load/store queues), MSHR wait lists, and cache request
    queues. [push] reports whether the element was accepted so callers can
    model back-pressure (a tile stalls its [send] when the buffer is full). *)

type 'a t

(** [create ~capacity ()] is an empty queue holding at most [capacity]
    elements; [None] means unbounded. *)
val create : ?capacity:int -> unit -> 'a t

val capacity : 'a t -> int option

val length : 'a t -> int

val is_empty : 'a t -> bool

(** True when the queue cannot accept another element. *)
val is_full : 'a t -> bool

(** [push q x] appends [x]; returns [false] (and leaves [q] unchanged) when
    the queue is full. *)
val push : 'a t -> 'a -> bool

(** Remove and return the oldest element. *)
val pop : 'a t -> 'a option

(** Oldest element without removing it. *)
val peek : 'a t -> 'a option

(** Oldest-first fold over the contents. *)
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val iter : ('a -> unit) -> 'a t -> unit

val to_list : 'a t -> 'a list

val clear : 'a t -> unit
