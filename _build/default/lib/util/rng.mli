(** Deterministic pseudo-random number generator (splitmix64).

    Every dataset generator in the reproduction draws from an explicitly
    seeded [Rng.t] so that traces, simulations, and benchmark tables are
    bit-for-bit reproducible across runs. *)

type t

(** [create seed] is a generator whose stream is a pure function of [seed]. *)
val create : int -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] when
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** Uniform in [\[0, 1)]. *)
val unit_float : t -> float

val bool : t -> bool

(** Standard normal variate (Box–Muller). *)
val gaussian : t -> float

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives an independent generator; [t] advances. *)
val split : t -> t
