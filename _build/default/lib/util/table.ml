type align = Left | Right

type column = { header : string; align : align }

let column ?(align = Right) header = { header; align }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let normalize ncols row =
  let len = List.length row in
  if len = ncols then row
  else if len < ncols then row @ List.init (ncols - len) (fun _ -> "")
  else List.filteri (fun i _ -> i < ncols) row

let render ~columns rows =
  let ncols = List.length columns in
  let rows = List.map (normalize ncols) rows in
  let widths =
    List.mapi
      (fun i col ->
        let cell_width =
          List.fold_left
            (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
            (String.length col.header)
            rows
        in
        cell_width)
      columns
  in
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        let col = List.nth columns i in
        let w = List.nth widths i in
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad col.align w cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row (List.map (fun c -> c.header) columns);
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ~title ~columns rows =
  Printf.printf "== %s ==\n%s\n" title (render ~columns rows)

let fcell ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let icell = string_of_int
