(* splitmix64: tiny, fast, and statistically solid for workload synthesis.
   Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let unit_float t =
  (* 53 high-quality bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let float t bound = unit_float t *. bound

let bool t = Int64.logand (next t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u = unit_float t in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () and u2 = unit_float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = { state = next t }
