type t = { mutable data : int array; mutable len : int }

let create ?(initial_capacity = 16) () =
  { data = Array.make (Stdlib.max initial_capacity 1) 0; len = 0 }

let length v = v.len

let push v x =
  if v.len = Array.length v.data then begin
    let fresh = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 fresh 0 v.len;
    v.data <- fresh
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Int_vec.get: out of bounds";
  v.data.(i)

let to_array v = Array.sub v.data 0 v.len

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let clear v = v.len <- 0
