type 'a t = { q : 'a Queue.t; cap : int option }

let create ?capacity () =
  (match capacity with
  | Some c when c < 0 -> invalid_arg "Bounded_queue.create: negative capacity"
  | Some _ | None -> ());
  { q = Queue.create (); cap = capacity }

let capacity t = t.cap

let length t = Queue.length t.q

let is_empty t = Queue.is_empty t.q

let is_full t =
  match t.cap with None -> false | Some c -> Queue.length t.q >= c

let push t x =
  if is_full t then false
  else begin
    Queue.add x t.q;
    true
  end

let pop t = Queue.take_opt t.q

let peek t = Queue.peek_opt t.q

let fold f acc t = Queue.fold f acc t.q

let iter f t = Queue.iter f t.q

let to_list t = List.rev (Queue.fold (fun acc x -> x :: acc) [] t.q)

let clear t = Queue.clear t.q
