type kind = K_load | K_store

type entry = {
  seq : int;
  kind : kind;
  addr : int;
  size : int;
  mutable resolved : bool;
  mutable completed : bool;
}

type t = {
  capacity : int;
  perfect_alias : bool;
  mutable entries : entry list;  (** oldest first; completed prefix pruned *)
  index : (int, entry) Hashtbl.t;
  mutable stall_count : int;
}

let create ~capacity ~perfect_alias =
  if capacity <= 0 then invalid_arg "Mao.create: capacity must be positive";
  {
    capacity;
    perfect_alias;
    entries = [];
    index = Hashtbl.create 64;
    stall_count = 0;
  }

let prune t =
  let rec drop = function
    | e :: rest when e.completed ->
        Hashtbl.remove t.index e.seq;
        drop rest
    | rest -> rest
  in
  t.entries <- drop t.entries

let insert t ~seq ~kind ~addr ~size =
  if Hashtbl.mem t.index seq then
    invalid_arg (Printf.sprintf "Mao.insert: duplicate seq %d" seq);
  let e =
    { seq; kind; addr; size; resolved = t.perfect_alias; completed = false }
  in
  Hashtbl.replace t.index seq e;
  t.entries <- t.entries @ [ e ]

let find t seq =
  match Hashtbl.find_opt t.index seq with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Mao: unknown seq %d" seq)

let resolve t ~seq = (find t seq).resolved <- true

let overlaps a b =
  a.addr < b.addr + b.size && b.addr < a.addr + a.size

let conflicts ~me older =
  if older.completed then false
  else if not older.resolved then true
  else if not me.resolved then true
  else overlaps me older

let can_issue t ~seq =
  prune t;
  let me = find t seq in
  let rec scan entries rank =
    match entries with
    | [] -> invalid_arg "Mao.can_issue: entry vanished"
    | e :: rest ->
        if e.seq = seq then
          (* Inside the capacity window of oldest in-flight entries? *)
          rank < t.capacity
        else
          let rank = if e.completed then rank else rank + 1 in
          let blocking =
            match (me.kind, e.kind) with
            | K_load, K_load -> false
            | K_load, K_store -> conflicts ~me e
            | K_store, _ -> conflicts ~me e
          in
          if blocking then false else scan rest rank
  in
  let ok = scan t.entries 0 in
  if not ok then t.stall_count <- t.stall_count + 1;
  ok

let complete t ~seq =
  (find t seq).completed <- true;
  prune t

let occupancy t =
  prune t;
  List.fold_left (fun acc e -> if e.completed then acc else acc + 1) 0 t.entries

let stalls t = t.stall_count
