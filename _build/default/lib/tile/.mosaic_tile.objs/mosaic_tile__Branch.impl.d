lib/tile/branch.ml: Mosaic_ir Predictor
