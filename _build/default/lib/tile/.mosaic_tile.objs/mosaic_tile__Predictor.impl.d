lib/tile/predictor.ml: Array Instr Mosaic_ir Op Stdlib
