lib/tile/tile_config.ml: Branch List Mosaic_ir Op
