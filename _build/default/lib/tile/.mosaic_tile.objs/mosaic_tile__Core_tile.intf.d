lib/tile/core_tile.mli: Branch Mosaic_compiler Mosaic_ir Mosaic_memory Mosaic_trace Tile_config
