lib/tile/tile_config.mli: Branch Mosaic_ir
