lib/tile/mao.ml: Hashtbl List Printf
