lib/tile/predictor.mli: Mosaic_ir
