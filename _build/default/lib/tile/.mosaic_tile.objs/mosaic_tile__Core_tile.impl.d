lib/tile/core_tile.ml: Array Branch Func Instr List Mao Mosaic_compiler Mosaic_ir Mosaic_memory Mosaic_trace Mosaic_util Op Predictor Queue Stdlib Tile_config Value
