lib/tile/mao.mli:
