lib/tile/branch.mli: Mosaic_ir Predictor
