(* Alternating sparse/dense phases (§VII-B): a Sinkhorn-style workload
   whose bottleneck is split between dense matrix multiplication (SGEMM,
   compute-bound) and an element-wise sparse-dense product (EWSD,
   memory-bound). The two phases want different hardware: SGEMM a
   fixed-function accelerator, EWSD a latency-tolerant DAE pair — so the
   best system is heterogeneous.

   Run with: dune exec examples/sinkhorn_soc.exe *)

module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Tile_config = Mosaic_tile.Tile_config

let gemm_dim = 48
let ewsd_rows = 2048
let ewsd_cols = 2048
let per_row = 16

let run_homog inst core nt =
  let trace = W.Runner.trace inst ~ntiles:nt in
  (Soc.run_homogeneous Mosaic.Presets.dae_soc
     ~program:inst.W.Runner.program ~trace ~tile_config:core)
    .Soc.cycles

let run_gemm_accel () =
  let inst = W.Sgemm.instance ~accel:true ~m:gemm_dim ~n:gemm_dim ~k:gemm_dim () in
  run_homog inst Tile_config.out_of_order 1

let run_ewsd_dae pairs =
  let inst, _ = W.Ewsd.dae_instance ~rows:ewsd_rows ~cols:ewsd_cols ~per_row () in
  let spec =
    Array.init (2 * pairs) (fun i ->
        ((if i < pairs then "ewsd_access" else "ewsd_execute"), inst.W.Runner.args))
  in
  let trace = W.Runner.trace_hetero inst ~tiles:spec in
  let tiles =
    Array.init (2 * pairs) (fun i ->
        {
          Soc.kernel = (if i < pairs then "ewsd_access" else "ewsd_execute");
          tile_config = Tile_config.in_order;
        })
  in
  (Soc.run Mosaic.Presets.dae_soc ~program:inst.W.Runner.program ~trace ~tiles)
    .Soc.cycles

let () =
  let gemm inst_core nt =
    run_homog (W.Sgemm.instance ~m:gemm_dim ~n:gemm_dim ~k:gemm_dim ()) inst_core nt
  in
  let ewsd inst_core nt =
    run_homog (W.Ewsd.instance ~rows:ewsd_rows ~cols:ewsd_cols ~per_row ()) inst_core nt
  in
  (* The two phases run serially, so a system's total is the sum of its
     per-phase times; each row is one candidate system. *)
  let systems =
    [
      ("1 InO", gemm Tile_config.in_order 1, ewsd Tile_config.in_order 1);
      ("1 OoO", gemm Tile_config.out_of_order 1, ewsd Tile_config.out_of_order 1);
      ("8 InO", gemm Tile_config.in_order 8, ewsd Tile_config.in_order 8);
      ("4 DAE pairs + accel", run_gemm_accel (), run_ewsd_dae 4);
    ]
  in
  let _, base_g, base_e = List.hd systems in
  let base = base_g + base_e in
  Printf.printf "%-22s %12s %12s %10s %9s\n" "system" "sgemm cyc" "ewsd cyc"
    "total" "speedup";
  List.iter
    (fun (name, g, e) ->
      Printf.printf "%-22s %12d %12d %10d %8.2fx\n" name g e (g + e)
        (float_of_int base /. float_of_int (g + e)))
    systems;
  print_endline
    "\nThe heterogeneous system (accelerator for the dense phase, DAE pairs \
     for the sparse phase) wins on the combined kernel."
