(* Keras TensorFlow performance modeling (§VII-C): lower three DNN training
   workloads through the Keras-layer mapping and compare an out-of-order
   server core against an accelerator-rich SoC in energy-delay product.

   Run with: dune exec examples/dnn_keras.exe *)

module W = Mosaic_workloads
module Soc = Mosaic.Soc
module Tile_config = Mosaic_tile.Tile_config

let edp model ~accel =
  let inst = W.Dnn.instance model ~accel in
  let trace = W.Runner.trace inst ~ntiles:1 in
  let r =
    Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:inst.W.Runner.program
      ~trace ~tile_config:Tile_config.out_of_order
  in
  (r.Soc.edp, r.Soc.cycles)

let () =
  Printf.printf "%-10s %14s %14s %18s\n" "model" "OoO cycles" "SoC cycles"
    "EDP improvement";
  List.iter
    (fun model ->
      let edp_cpu, cyc_cpu = edp model ~accel:false in
      let edp_soc, cyc_soc = edp model ~accel:true in
      Printf.printf "%-10s %14d %14d %17.1fx\n" (W.Dnn.name model) cyc_cpu
        cyc_soc (edp_cpu /. edp_soc))
    W.Dnn.all;
  print_endline
    "\nConvNet improves least (convolution backprop has no accelerator), \
     GraphSage is limited by its random-walk + embedding stages, RecSys is \
     fully accelerated."
