(* Accelerator design-space exploration (§IV, Fig 10): sweep PLM sizes
   against workload sizes for the three fixed-function accelerators and
   validate the analytic model against the RTL-simulation and FPGA goldens.

   Run with: dune exec examples/design_space.exe *)

module Dse = Mosaic_accel.Dse
module Model = Mosaic_accel.Accel_model

let () =
  List.iter
    (fun kind ->
      Printf.printf "== %s ==\n" kind;
      Printf.printf "%8s %10s %12s %12s %10s\n" "PLM" "workload" "model cyc"
        "area um2" "power W";
      let points =
        Dse.sweep ~kind ~plm_sizes:Dse.paper_plm_sizes
          ~workload_bytes:Dse.paper_workload_bytes Model.default_sys
      in
      List.iter
        (fun (p : Dse.point) ->
          Printf.printf "%6dKB %8dKB %12d %12.0f %10.3f\n"
            (p.Dse.plm_bytes / 1024)
            (p.Dse.workload_bytes / 1024)
            p.Dse.model_cycles p.Dse.area_um2 p.Dse.avg_power_w)
        points;
      let vs_rtl, vs_fpga = Dse.mean_accuracy points in
      Printf.printf "model accuracy: %.1f%% vs RTL sim, %.1f%% vs FPGA\n\n"
        (100.0 *. vs_rtl) (100.0 *. vs_fpga))
    [ "gemm"; "histo"; "elementwise" ]
