(* Quickstart: author a kernel with the builder DSL, generate its traces
   with the interpreter, and simulate it on two different core models.

   This walks the full MosaicSim flow of Figure 3:
     source (builder DSL) -> IR -> static DDG + dynamic traces -> tile model

   Run with: dune exec examples/quickstart.exe *)

open Mosaic_ir
module B = Builder
module Interp = Mosaic_trace.Interp
module Soc = Mosaic.Soc
module Tile_config = Mosaic_tile.Tile_config

let n = 4096

let () =
  (* 1. A program with three global arrays and a SAXPY-like kernel,
        parallelized SPMD-style across however many tiles we launch. *)
  let prog = Program.create () in
  let gx = Program.alloc prog "x" ~elems:n ~elem_size:4 in
  let gy = Program.alloc prog "y" ~elems:n ~elem_size:4 in
  let gz = Program.alloc prog "z" ~elems:n ~elem_size:4 in
  let _ =
    B.define prog "saxpy" ~nparams:1 (fun b ->
        let pn = B.param b 0 in
        (* Each tile takes a contiguous slice of the iteration space. *)
        let per =
          B.sdiv b (B.sub b (B.add b pn B.ntiles) (B.imm 1)) B.ntiles
        in
        let lo = B.mul b B.tid per in
        let want = B.add b lo per in
        let hi = B.select b (B.icmp b Op.Lt pn want) pn want in
        B.for_ b ~from:lo ~to_:hi (fun i ->
            let x = B.load b ~size:4 (B.elem b gx i) in
            let y = B.load b ~size:4 (B.elem b gy i) in
            let z = B.fadd b (B.fmul b (B.fimm 2.0) x) y in
            B.store b ~size:4 ~addr:(B.elem b gz i) z);
        B.ret b ())
  in
  Validate.check_exn prog;
  Format.printf "IR for the kernel:@.%a@" Pretty.pp_func
    (Program.func_exn prog "saxpy");

  (* 2. Native execution: run the kernel for real on 4 tiles, recording the
        control-flow and memory traces. *)
  let it = Interp.create prog ~kernel:"saxpy" ~ntiles:4
      ~args:[ Value.of_int n ] in
  for i = 0 to n - 1 do
    Interp.poke_global it gx i (Value.of_float (float_of_int i));
    Interp.poke_global it gy i (Value.of_float 1.0)
  done;
  let trace = Interp.run it in
  (* The interpreter computed real values: check one. *)
  let z100 = Value.to_float (Interp.peek_global it gz 100) in
  assert (z100 = (2.0 *. 100.0) +. 1.0);
  Printf.printf "traced %d dynamic instructions over %d tiles\n"
    (Mosaic_trace.Trace.total_dyn_instrs trace)
    trace.Mosaic_trace.Trace.ntiles;

  (* 3. Simulate the same traces on two systems. *)
  let run label core =
    let r =
      Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:prog ~trace
        ~tile_config:core
    in
    Printf.printf "%-18s %8d cycles   IPC %.2f   %.2e J\n" label r.Soc.cycles
      r.Soc.ipc r.Soc.energy_j;
    r.Soc.cycles
  in
  let ooo = run "4x out-of-order" Tile_config.out_of_order in
  let ino = run "4x in-order" Tile_config.in_order in
  Printf.printf "out-of-order speedup over in-order: %.2fx\n"
    (float_of_int ino /. float_of_int ooo)
