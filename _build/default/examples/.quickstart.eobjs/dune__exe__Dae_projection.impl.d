examples/dae_projection.ml: Mosaic Mosaic_compiler Mosaic_tile Mosaic_workloads Printf
