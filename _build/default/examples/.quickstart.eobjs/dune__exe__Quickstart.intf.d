examples/quickstart.mli:
