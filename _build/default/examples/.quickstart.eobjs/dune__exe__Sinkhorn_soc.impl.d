examples/sinkhorn_soc.ml: Array List Mosaic Mosaic_tile Mosaic_workloads Printf
