examples/dae_projection.mli:
