examples/dnn_keras.mli:
