examples/quickstart.ml: Builder Format Mosaic Mosaic_ir Mosaic_tile Mosaic_trace Op Pretty Printf Program Validate Value
