examples/design_space.ml: List Mosaic_accel Printf
