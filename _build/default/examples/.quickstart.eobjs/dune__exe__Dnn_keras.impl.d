examples/dnn_keras.ml: List Mosaic Mosaic_tile Mosaic_workloads Printf
