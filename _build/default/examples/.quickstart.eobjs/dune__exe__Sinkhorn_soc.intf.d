examples/sinkhorn_soc.mli:
