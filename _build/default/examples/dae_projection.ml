(* Decoupled Access/Execute on the bipartite graph-projection kernel —
   the heterogeneous-parallelism case study of the paper's §VII-A.

   The DAE compiler pass slices the kernel into an access slice (addresses,
   loads/stores, control) and an execute slice (value computation); pairs of
   in-order cores run the slices concurrently, the access core acting as a
   non-speculative "perfect prefetcher" for its partner.

   Run with: dune exec examples/dae_projection.exe *)

module W = Mosaic_workloads
module Dae = Mosaic_compiler.Dae
module Soc = Mosaic.Soc
module Tile_config = Mosaic_tile.Tile_config

let n_left = 384
let n_right = 1024
let degree = 8

let () =
  (* Slice the kernel and look at what the compiler did. *)
  let inst, info = W.Projection.dae_instance ~n_left ~n_right ~degree () in
  Printf.printf
    "DAE slicing: %d loads forwarded to execute, %d stored values routed \
     back, %d pure instructions duplicated into both slices\n"
    info.Dae.sent_loads info.Dae.routed_stores info.Dae.duplicated;

  (* Baseline: one in-order core runs the original kernel. *)
  let trace1 = W.Runner.trace inst ~ntiles:1 in
  let base =
    Soc.run_homogeneous Mosaic.Presets.dae_soc ~program:inst.W.Runner.program
      ~trace:trace1 ~tile_config:Tile_config.in_order
  in
  Printf.printf "1 in-order core:      %9d cycles\n" base.Soc.cycles;

  (* One DAE pair: tile 0 = access slice, tile 1 = execute slice. *)
  let tiles_spec =
    [|
      ("projection_access", inst.W.Runner.args);
      ("projection_execute", inst.W.Runner.args);
    |]
  in
  let trace2 = W.Runner.trace_hetero inst ~tiles:tiles_spec in
  let r =
    Soc.run Mosaic.Presets.dae_soc ~program:inst.W.Runner.program ~trace:trace2
      ~tiles:
        [|
          { Soc.kernel = "projection_access"; tile_config = Tile_config.in_order };
          { Soc.kernel = "projection_execute"; tile_config = Tile_config.in_order };
        |]
  in
  Printf.printf "1 DAE pair (2 cores): %9d cycles  -> %.2fx speedup\n"
    r.Soc.cycles
    (float_of_int base.Soc.cycles /. float_of_int r.Soc.cycles);
  Printf.printf
    "messages through the Interleaver: %d sends, %d receives, %d stalls on \
     full buffers\n"
    r.Soc.interleaver.Mosaic.Interleaver.sends
    r.Soc.interleaver.Mosaic.Interleaver.recvs
    r.Soc.interleaver.Mosaic.Interleaver.send_stalls
